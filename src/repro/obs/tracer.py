"""Span-based structured tracing for the simulators and the mapper.

A :class:`Tracer` records a tree of :class:`Span` records.  Each span has
a name, a category, wall-clock timing, an optional *simulated-cycle*
count, a bag of integer counter deltas (``SimTrace`` snapshots diffed at
span boundaries), and free-form string labels.  Spans nest: entering a
span while another is open attaches it as a child.

Two properties shape the design:

* **Near-zero cost when disabled.**  A disabled tracer's :meth:`span`
  returns one shared no-op span (no allocation, no clock read), and
  instrumented code guards any snapshot work behind
  :attr:`Tracer.enabled` — so the default, untraced hot path pays one
  attribute check per span site, never per simulated cycle.
* **Engine parity.**  The FlexFlow simulator's two engines must emit
  *identical* span trees: :meth:`Span.parity_tree` projects a span onto
  its deterministic fields (name, category, cycles, counters, children),
  excluding wall times and labels, so the tracer doubles as a
  correctness oracle for the vectorized fast path — the same role the
  counter-equivalence tests play, one structural level up.

A module-level *current tracer* (default: disabled) lets code that has
no tracer parameter of its own — the mapper's cached search, the
experiment runner — participate when the CLI installs one via
:func:`use_tracer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One traced region: timing, simulated cycles, counter deltas."""

    __slots__ = (
        "name",
        "category",
        "start_wall",
        "end_wall",
        "cycles",
        "counters",
        "labels",
        "children",
        "events",
    )

    def __init__(
        self,
        name: str,
        category: str,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start_wall: float = 0.0
        self.end_wall: float = 0.0
        self.cycles: int = 0
        self.counters: Dict[str, int] = {}
        self.labels: Dict[str, str] = dict(labels or {})
        self.children: List["Span"] = []
        self.events: List[Dict[str, Any]] = []

    # -- recording ----------------------------------------------------------

    def set_cycles(self, cycles: int) -> None:
        self.cycles = int(cycles)

    def add_counters(self, counters: Dict[str, int]) -> None:
        """Accumulate integer counter deltas into the span."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    def set_label(self, key: str, value: str) -> None:
        self.labels[key] = str(value)

    # -- views --------------------------------------------------------------

    @property
    def duration_wall(self) -> float:
        return self.end_wall - self.start_wall

    def parity_tree(self) -> Dict[str, Any]:
        """The deterministic projection of this span (recursively).

        Contains only fields that must match between execution engines:
        wall times, labels, and events (which carry timestamps) are
        excluded.  Two runs are span-equivalent iff their roots' parity
        trees compare equal.
        """
        return {
            "name": self.name,
            "category": self.category,
            "cycles": self.cycles,
            "counters": dict(sorted(self.counters.items())),
            "children": [child.parity_tree() for child in self.children],
        }

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, category={self.category!r},"
            f" cycles={self.cycles}, children={len(self.children)})"
        )


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def set_cycles(self, cycles: int) -> None:
        pass

    def add_counters(self, counters: Dict[str, int]) -> None:
        pass

    def set_label(self, key: str, value: str) -> None:
        pass


#: Singleton no-op span: identity-checked by the zero-overhead tests.
NULL_SPAN = _NullSpan()


@contextmanager
def _null_context() -> Iterator[_NullSpan]:
    yield NULL_SPAN


class Tracer:
    """Collects a forest of spans; disabled instances record nothing."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def _record(self, span: Span) -> Iterator[Span]:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span.start_wall = time.perf_counter()
        try:
            yield span
        finally:
            span.end_wall = time.perf_counter()
            self._stack.pop()

    def span(
        self,
        name: str,
        category: str = "",
        labels: Optional[Dict[str, str]] = None,
    ):
        """Context manager opening a (possibly nested) span.

        Disabled tracers return a shared no-op context — callers can
        unconditionally ``with tracer.span(...) as sp`` and still skip
        expensive snapshot work behind :attr:`enabled`.
        """
        if not self.enabled:
            return _null_context()
        return self._record(Span(name, category, labels))

    def event(
        self,
        name: str,
        category: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Record an instant event on the innermost open span (or a root).

        Events carry a wall timestamp and labels only; they are excluded
        from parity trees (retry/timeout events are wall-clock dependent
        by nature).
        """
        if not self.enabled:
            return
        record = {
            "name": name,
            "category": category,
            "wall": time.perf_counter(),
            "labels": dict(labels or {}),
        }
        if self._stack:
            self._stack[-1].events.append(record)
        else:
            holder = Span(name, category, labels)
            holder.start_wall = holder.end_wall = record["wall"]
            holder.events.append(record)
            self.roots.append(holder)

    def add_span(
        self,
        name: str,
        category: str,
        *,
        start_wall: float,
        end_wall: float,
        cycles: int = 0,
        counters: Optional[Dict[str, int]] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Optional[Span]:
        """Append a pre-timed root span (for supervisors that interleave
        many concurrent regions and cannot use the context manager)."""
        if not self.enabled:
            return None
        span = Span(name, category, labels)
        span.start_wall = start_wall
        span.end_wall = end_wall
        span.cycles = int(cycles)
        if counters:
            span.add_counters(counters)
        self.roots.append(span)
        return span

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.iter_spans()

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()


#: The default tracer: disabled, shared, never records.
NULL_TRACER = Tracer(enabled=False)

_current: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The tracer instrumented code uses when given no explicit one."""
    return _current


def use_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the current tracer; returns the previous one.

    Passing ``None`` restores the disabled default.  Callers should
    restore the previous tracer when done (see :func:`tracing`).
    """
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope with ``tracer`` (or a fresh enabled one) installed as current.

    >>> with tracing() as t:
    ...     with t.span("work", category="demo") as sp:
    ...         sp.set_cycles(3)
    >>> [root.name for root in t.roots]
    ['work']
    """
    active = tracer if tracer is not None else Tracer(enabled=True)
    previous = use_tracer(active)
    try:
        yield active
    finally:
        use_tracer(previous)


def counter_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Per-key difference of two counter snapshots (monotone counters)."""
    return {key: after[key] - before.get(key, 0) for key in after}
