"""Exporters: Chrome/Perfetto trace files and flat metric dumps.

The span tracer's output becomes a ``trace.json`` in the Chrome trace
event format (the JSON array-of-events flavour wrapped in an object with
``traceEvents``), which https://ui.perfetto.dev and ``chrome://tracing``
open directly.  Every span maps to one complete (``"ph": "X"``) event
whose ``args`` carry the simulated cycles and counter deltas; tracer
events map to instant (``"ph": "i"``) events.

Metric registries dump to flat JSON or CSV for spreadsheet-grade
consumption.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

#: Trace-file schema version (recorded in ``otherData``).
TRACE_SCHEMA_VERSION = 1


def _to_us(seconds: float, origin: float) -> float:
    return round((seconds - origin) * 1e6, 3)


def _span_events(
    span: Span, origin: float, pid: int, tid: int
) -> List[Dict[str, Any]]:
    args: Dict[str, Any] = {"cycles": span.cycles}
    args.update(span.counters)
    args.update(span.labels)
    events: List[Dict[str, Any]] = [
        {
            "name": span.name,
            "cat": span.category or "default",
            "ph": "X",
            "ts": _to_us(span.start_wall, origin),
            "dur": max(_to_us(span.end_wall, origin) - _to_us(span.start_wall, origin), 0.0),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
    ]
    for event in span.events:
        events.append(
            {
                "name": event["name"],
                "cat": event["category"] or "default",
                "ph": "i",
                "ts": _to_us(event["wall"], origin),
                "pid": pid,
                "tid": tid,
                "s": "t",
                "args": dict(event["labels"]),
            }
        )
    for child in span.children:
        events.extend(_span_events(child, origin, pid, tid))
    return events


def to_chrome_trace(
    tracer: Tracer, *, process_name: str = "repro"
) -> Dict[str, Any]:
    """The tracer's forest as a Chrome trace event document (a dict)."""
    roots = tracer.roots
    origin = min((s.start_wall for s in roots), default=0.0)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, root in enumerate(roots):
        events.extend(_span_events(root, origin, pid=0, tid=tid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "schema": TRACE_SCHEMA_VERSION,
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: str, *, process_name: str = "repro"
) -> None:
    """Serialize :func:`to_chrome_trace` to ``path`` as JSON."""
    document = to_chrome_trace(tracer, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")


def span_to_dict(span: Span) -> Dict[str, Any]:
    """Full (timing-included) JSON projection of one span subtree."""
    return {
        "name": span.name,
        "category": span.category,
        "start_wall": span.start_wall,
        "duration_wall": span.duration_wall,
        "cycles": span.cycles,
        "counters": dict(sorted(span.counters.items())),
        "labels": dict(sorted(span.labels.items())),
        "events": [
            {"name": e["name"], "labels": dict(e["labels"])}
            for e in span.events
        ],
        "children": [span_to_dict(child) for child in span.children],
    }


def parity_report(tracer: Tracer) -> List[Dict[str, Any]]:
    """Deterministic span forest: the engine-parity comparison object."""
    return [root.parity_tree() for root in tracer.roots]


def metrics_to_json(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry snapshot as a JSON object string."""
    from repro.obs.metrics import REGISTRY

    registry = registry if registry is not None else REGISTRY
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True)


def metrics_to_csv(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry snapshot as ``metric,field,value`` CSV rows."""
    from repro.obs.metrics import REGISTRY

    registry = registry if registry is not None else REGISTRY
    out = io.StringIO()
    out.write("metric,field,value\n")
    for name, value in registry.snapshot().items():
        if isinstance(value, dict):
            for field, inner in value.items():
                out.write(f"{name},{field},{inner}\n")
        else:
            out.write(f"{name},value,{value}\n")
    return out.getvalue()


def validate_chrome_trace(document: Any) -> List[str]:
    """Structural checks against the Chrome trace event format.

    Returns a list of problems (empty = valid).  Used by the schema test
    that guards the acceptance criterion "loads in Perfetto".
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
        return ["traceEvents must be an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        phase = event.get("ph")
        if phase == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: complete event needs numeric ts")
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"{where}: complete event needs numeric dur")
            elif event["dur"] < 0:
                problems.append(f"{where}: negative dur")
        elif phase == "i":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: instant event needs numeric ts")
        elif phase != "M":
            problems.append(f"{where}: unexpected phase {phase!r}")
    return problems
