"""Tracer-to-event bridge: live span/event records as plain dicts.

The span :class:`~repro.obs.tracer.Tracer` collects a tree and is read
*after* a run finishes — right for profiling, wrong for a server that
must stream progress while a request is still computing.  The bridge
closes that gap:

* :class:`BridgeTracer` is a drop-in ``Tracer`` that additionally calls
  a sink callback with a JSON-serializable dict the moment each span
  closes (and for each instant event).  The serve layer installs one per
  request via :func:`~repro.obs.tracer.tracing` and forwards the dicts
  onto an SSE stream.
* :func:`condense_spans` flattens a finished tracer into bounded,
  serializable summaries — what a worker process ships back to the
  coordinator so remote computations still report where their time went.

Sinks must be cheap and must never raise; a sink that needs to cross a
thread boundary (e.g. into an asyncio loop) should hand off via
``loop.call_soon_threadsafe`` itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.tracer import Span, Tracer

#: A sink receives one serializable record per closed span / event.
EventSink = Callable[[Dict[str, Any]], None]


def event_record(
    name: str,
    category: str = "",
    labels: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """One instant event as a flat, JSON-serializable progress record."""
    return {
        "type": "event",
        "name": name,
        "category": category,
        "labels": dict(labels or {}),
    }


def span_record(span: Span) -> Dict[str, Any]:
    """One closed span as a flat, JSON-serializable progress record."""
    return {
        "type": "span",
        "name": span.name,
        "category": span.category,
        "cycles": span.cycles,
        "duration_ms": round(span.duration_wall * 1e3, 3),
        "counters": dict(sorted(span.counters.items())),
        "labels": dict(span.labels),
    }


class BridgeTracer(Tracer):
    """A recording tracer that also streams records to a sink.

    Spans are forwarded when they *close* (only then are their cycle and
    counter totals final), innermost-first; instant events are forwarded
    immediately.  The recorded tree stays byte-identical to a plain
    ``Tracer``'s, so parity oracles and exporters keep working on top.
    """

    def __init__(self, sink: EventSink, enabled: bool = True) -> None:
        super().__init__(enabled=enabled)
        self._sink = sink

    def _emit(self, record: Dict[str, Any]) -> None:
        try:
            self._sink(record)
        except Exception:  # a broken sink must never break the traced run
            pass

    def span(
        self,
        name: str,
        category: str = "",
        labels: Optional[Dict[str, str]] = None,
    ):
        if not self.enabled:
            return super().span(name, category, labels)
        return self._bridged(Span(name, category, labels))

    @contextmanager
    def _bridged(self, span: Span) -> Iterator[Span]:
        with self._record(span):
            try:
                yield span
            finally:
                self._emit(span_record(span))

    def event(
        self,
        name: str,
        category: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        super().event(name, category, labels)
        if self.enabled:
            self._emit(event_record(name, category, labels))


def condense_spans(tracer: Tracer, limit: int = 64) -> List[Dict[str, Any]]:
    """Depth-first span summaries of a finished tracer, size-bounded.

    Worker processes return this with their result so the coordinator can
    stream a post-hoc trace for computations it did not run in-process.
    A final marker record reports how many spans the bound dropped.
    """
    records: List[Dict[str, Any]] = []
    dropped = 0
    for span in tracer.iter_spans():
        if len(records) < limit:
            records.append(span_record(span))
        else:
            dropped += 1
    if dropped:
        records.append(
            {"type": "event", "name": "spans-truncated",
             "category": "obs", "labels": {"dropped": str(dropped)}}
        )
    return records
