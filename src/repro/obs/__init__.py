"""Observability: structured tracing, metrics, and trace exporters.

Three leaf modules (no simulator imports, so the simulators can import
them freely):

* :mod:`repro.obs.tracer` — nested spans with wall time, simulated
  cycles, and counter deltas; near-zero cost when disabled; parity
  trees for engine equivalence checks.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with label
  sets, recorded into a process-wide registry.
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace.json`` and flat
  JSON/CSV metric dumps.

Plus one orchestration module, imported lazily to avoid a cycle with
:mod:`repro.sim`:

* :mod:`repro.obs.profile` — runs workloads/experiments under a tracer
  and builds the per-layer, per-phase breakdown tables behind
  ``repro trace`` and ``repro profile``.

See ``docs/OBSERVABILITY.md`` for the user guide.
"""

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    metrics_to_csv,
    metrics_to_json,
    parity_report,
    span_to_dict,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    counter_delta,
    current_tracer,
    tracing,
    use_tracer,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "counter_delta",
    "current_tracer",
    "tracing",
    "use_tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    # export
    "TRACE_SCHEMA_VERSION",
    "metrics_to_csv",
    "metrics_to_json",
    "parity_report",
    "span_to_dict",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
