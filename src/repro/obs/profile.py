"""Workload tracing and experiment profiling (the ``repro trace`` /
``repro profile`` engine room).

:func:`trace_workload` runs every CONV layer of a workload through the
FlexFlow functional simulator under an enabled tracer and reduces the
span forest to a per-layer, per-phase breakdown table —
load/compute/drain cycles, buffer traffic, PE occupancy.  The breakdown
is built *only* from parity fields (names, cycles, counters), so the
table is engine-independent: ``--engine auto`` and ``--engine
reference`` print byte-identical tables, which is the CLI face of the
tracer-as-correctness-oracle property.

:func:`profile_experiment` runs one registered experiment with a tracer
and a fresh metrics registry installed, capturing mapper search spans
and cache statistics alongside wall time.

This module imports the simulators, so :mod:`repro.obs` deliberately
does not import it at package level (the simulators import
``repro.obs.tracer``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.arch.config import ArchConfig
from repro.dataflow.mapper import map_network
from repro.errors import SpecificationError
from repro.nn.network import Network
from repro.nn.reference import make_inputs, make_kernels
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import Span, Tracer, tracing
from repro.sim.flexflow_sim import FlexFlowFunctionalSim


@dataclass
class WorkloadTrace:
    """Outcome of tracing one workload: the span forest + breakdown rows."""

    network_name: str
    array_dim: int
    engine: str
    tracer: Tracer
    rows: List[Dict[str, Any]]


def trace_workload(
    network: Network,
    *,
    array_dim: int = 16,
    engine: str = "auto",
    tracer: Optional[Tracer] = None,
) -> WorkloadTrace:
    """Simulate every CONV layer under a tracer; build the breakdown.

    The network mapping is computed *before* the first span opens, so
    the span forest contains only simulator spans — mapper spans depend
    on the process-wide mapping cache (a hit skips the search), which
    would break run-to-run parity.
    """
    if engine not in FlexFlowFunctionalSim.ENGINES:
        raise SpecificationError(
            f"engine must be one of {FlexFlowFunctionalSim.ENGINES},"
            f" got {engine!r}"
        )
    if not network.conv_layers:
        raise SpecificationError(
            f"network {network.name!r} has no CONV layers to trace"
        )
    mapping = map_network(network, array_dim).by_layer_name()
    config = ArchConfig().scaled_to(array_dim)
    active = tracer if tracer is not None else Tracer(enabled=True)
    for layer in network.conv_layers:
        sim = FlexFlowFunctionalSim(
            config,
            factors=mapping[layer.name].factors,
            engine=engine,
            tracer=active,
        )
        sim.run_layer(layer, make_inputs(layer), make_kernels(layer))
    return WorkloadTrace(
        network_name=network.name,
        array_dim=array_dim,
        engine=engine,
        tracer=active,
        rows=breakdown_rows(active, array_dim),
    )


def _phase_cycles(layer_span: Span) -> Dict[str, int]:
    phases = {"load": 0, "compute": 0, "drain": 0}
    for child in layer_span.children:
        if child.name.startswith("phase:"):
            phases[child.name.split(":", 1)[1]] = child.cycles
    return phases


def breakdown_rows(
    tracer: Tracer, array_dim: int
) -> List[Dict[str, Any]]:
    """Per-layer, per-phase rows from a simulator span forest.

    Reads only parity fields; one row per ``conv:*`` root span, in
    recording order.
    """
    rows: List[Dict[str, Any]] = []
    for root in tracer.roots:
        if not root.name.startswith("conv:"):
            continue
        phases = _phase_cycles(root)
        counters = root.counters
        compute = phases["compute"] or root.cycles
        pes = array_dim * array_dim
        occupancy = (
            counters.get("mac_ops", 0) / (compute * pes) if compute else 0.0
        )
        rows.append(
            {
                "layer": root.name.split(":", 1)[1],
                "load": phases["load"],
                "compute": phases["compute"],
                "drain": phases["drain"],
                "bus_words": counters.get("bus_transfers", 0),
                "nbuf_rd": counters.get("neuron_buffer_reads", 0),
                "nbuf_wr": counters.get("neuron_buffer_writes", 0),
                "kbuf_rd": counters.get("kernel_buffer_reads", 0),
                "ls_rd": counters.get("local_store_reads", 0),
                "ls_wr": counters.get("local_store_writes", 0),
                "occupancy": occupancy,
            }
        )
    return rows


def format_breakdown(trace: WorkloadTrace) -> str:
    """The ``repro trace`` table: aligned text, engine-independent."""
    columns = [
        "layer", "load", "compute", "drain", "bus_words",
        "nbuf_rd", "nbuf_wr", "kbuf_rd", "ls_rd", "ls_wr", "occupancy",
    ]

    def fmt(row: Dict[str, Any], col: str) -> str:
        value = row[col]
        if col == "occupancy":
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(row, col) for col in columns] for row in trace.rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = [
        f"{trace.network_name} on a {trace.array_dim}x{trace.array_dim}"
        f" array (engine {trace.engine}):",
        "  ".join(col.rjust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    lines.extend(
        "  ".join(row[i].rjust(widths[i]) for i in range(len(columns)))
        for row in cells
    )
    totals = _totals(trace.rows)
    lines.append(
        f"total: {totals['cycles']} pipeline cycles"
        f" ({totals['load']} load, {totals['compute']} compute,"
        f" {totals['drain']} drain),"
        f" mean occupancy {totals['occupancy']:.3f}"
    )
    return "\n".join(lines)


def _totals(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    load = sum(row["load"] for row in rows)
    compute = sum(row["compute"] for row in rows)
    drain = sum(row["drain"] for row in rows)
    occ = (
        sum(row["occupancy"] for row in rows) / len(rows) if rows else 0.0
    )
    return {
        "load": load,
        "compute": compute,
        "drain": drain,
        "cycles": load + compute + drain,
        "occupancy": occ,
    }


# -- experiment profiling -----------------------------------------------------


def profile_experiment(
    experiment_id: str, *, tracer: Optional[Tracer] = None
) -> Tuple[Any, Tracer]:
    """Run one experiment with tracing installed; returns (result, tracer).

    The process-wide metrics registry is reset first, so the snapshot
    afterwards describes this run alone (mapper cache hits/misses,
    candidate counts).  Mapper spans nest under the ``profile:`` root.
    """
    from repro.experiments import run_experiment

    REGISTRY.reset()
    active = tracer if tracer is not None else Tracer(enabled=True)
    with tracing(active):
        with active.span(
            f"profile:{experiment_id}", category="experiment"
        ):
            result = run_experiment(experiment_id)
    return result, active


def format_profile(
    experiment_id: str, tracer: Tracer, *, max_spans: int = 12
) -> str:
    """The ``repro profile`` report: hot spans + metrics snapshot."""
    lines = [f"profile of experiment {experiment_id!r}:"]
    spans = sorted(
        tracer.iter_spans(), key=lambda s: s.duration_wall, reverse=True
    )
    total = sum(root.duration_wall for root in tracer.roots)
    lines.append(f"wall time: {total * 1e3:.1f} ms across {len(spans)} span(s)")
    lines.append("hottest spans (wall ms, category, name):")
    for span in spans[:max_spans]:
        lines.append(
            f"  {span.duration_wall * 1e3:9.2f}  {span.category:<12}"
            f" {span.name}"
        )
    snapshot = REGISTRY.snapshot()
    if snapshot:
        lines.append("metrics:")
        for name, value in snapshot.items():
            if isinstance(value, dict):
                value = (
                    f"count={value['count']:g} mean={value['mean']:.1f}"
                    f" min={value['min']:g} max={value['max']:g}"
                )
            lines.append(f"  {name} = {value}")
    lines.append(_mapping_cache_line())
    return "\n".join(lines)


def _mapping_cache_line() -> str:
    """One-line in-process mapping cache summary for ``repro profile``."""
    from repro.dataflow.mapper import mapping_cache_info

    info = mapping_cache_info()
    layer = info["map_layer"]
    network = info["map_network"]
    return (
        f"mapping cache (REPRO_MAPPING_CACHE_SIZE={info['configured_size']}):"
        f" map_layer {layer.hits}/{layer.hits + layer.misses} hits"
        f" ({layer.currsize}/{layer.maxsize} entries),"
        f" map_network {network.hits}/{network.hits + network.misses} hits"
        f" ({network.currsize}/{network.maxsize} entries)"
    )
