"""PE availability masks and the live-subgrid remapping they induce.

A :class:`AvailabilityMask` records which PEs of a ``D x D`` array are
permanently unusable (stuck-at-dead PEs, dead rows, dead columns).  The
mask is immutable and hashable so it can ride inside a frozen
:class:`~repro.arch.config.ArchConfig` and participate in the mapping
cache keys — a masked configuration must never reuse an unmasked
configuration's memoized mapping.

**Remapping model.**  FlexFlow's controller steers logical PE rows and
columns onto physical ones: a PE row feeds one adder tree and a PE column
hangs off one vertical data bus, so the natural repair granularity is a
whole physical row or column.  Scattered dead PEs couple the two choices
(keeping row ``r`` and column ``c`` both alive is impossible when PE
``(r, c)`` is dead), which makes the exact maximum usable subgrid a
biclique problem; :func:`live_grid` uses the standard deterministic greedy
repair — retire the row or column with the most faults until the selected
subgrid is fault-free.  The resulting :class:`LiveGrid` is the contract
between the mapper (which packs parallelism into ``usable_rows x
usable_cols``) and the simulators (which address the surviving physical
rows/columns in order).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from repro.errors import ConfigurationError

Coord = Tuple[int, int]


@dataclass(frozen=True)
class AvailabilityMask:
    """Which PEs of a ``D x D`` array are usable.

    Args:
        array_dim: ``D`` — the physical PE array dimension.
        dead: set of ``(row, col)`` coordinates of unusable PEs.
    """

    array_dim: int
    dead: FrozenSet[Coord] = frozenset()

    def __post_init__(self) -> None:
        if not isinstance(self.array_dim, int) or isinstance(self.array_dim, bool):
            raise ConfigurationError(
                f"array_dim must be an int, got {self.array_dim!r}"
            )
        if self.array_dim <= 0:
            raise ConfigurationError(
                f"array_dim must be positive, got {self.array_dim}"
            )
        # Normalize whatever iterable of pairs we were given into a
        # canonical frozenset of int tuples (the dataclass is frozen).
        normalized = set()
        for entry in self.dead:
            try:
                row, col = entry
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"dead PE entries must be (row, col) pairs, got {entry!r}"
                ) from None
            if not (0 <= row < self.array_dim and 0 <= col < self.array_dim):
                raise ConfigurationError(
                    f"dead PE ({row},{col}) outside the"
                    f" {self.array_dim}x{self.array_dim} array"
                )
            normalized.add((int(row), int(col)))
        object.__setattr__(self, "dead", frozenset(normalized))

    # -- constructors --------------------------------------------------------

    @classmethod
    def healthy(cls, array_dim: int) -> "AvailabilityMask":
        """A mask with every PE alive."""
        return cls(array_dim=array_dim)

    @classmethod
    def from_failures(
        cls,
        array_dim: int,
        *,
        dead_pes: Iterable[Coord] = (),
        dead_rows: Iterable[int] = (),
        dead_cols: Iterable[int] = (),
    ) -> "AvailabilityMask":
        """Build a mask from individual PEs plus whole rows/columns."""
        dead = {(int(r), int(c)) for r, c in dead_pes}
        for row in dead_rows:
            if not 0 <= row < array_dim:
                raise ConfigurationError(
                    f"dead row {row} outside the {array_dim}x{array_dim} array"
                )
            dead.update((row, c) for c in range(array_dim))
        for col in dead_cols:
            if not 0 <= col < array_dim:
                raise ConfigurationError(
                    f"dead column {col} outside the {array_dim}x{array_dim} array"
                )
            dead.update((r, col) for r in range(array_dim))
        return cls(array_dim=array_dim, dead=frozenset(dead))

    # -- queries -------------------------------------------------------------

    @property
    def num_dead(self) -> int:
        return len(self.dead)

    @property
    def num_live(self) -> int:
        return self.array_dim * self.array_dim - self.num_dead

    @property
    def is_healthy(self) -> bool:
        return not self.dead

    def is_dead(self, row: int, col: int) -> bool:
        return (row, col) in self.dead

    @property
    def fingerprint(self) -> str:
        """Stable short digest for cache keys, filenames, and logs."""
        canonical = f"{self.array_dim}:" + ",".join(
            f"{r}.{c}" for r, c in sorted(self.dead)
        )
        return hashlib.blake2b(canonical.encode(), digest_size=8).hexdigest()

    def describe(self) -> str:
        """ASCII map of the array: ``.`` live, ``X`` dead."""
        lines = []
        for row in range(self.array_dim):
            lines.append(
                "".join(
                    "X" if (row, col) in self.dead else "."
                    for col in range(self.array_dim)
                )
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class LiveGrid:
    """The fault-free physical subgrid selected by :func:`live_grid`.

    ``rows``/``cols`` list the surviving physical indices in ascending
    order; logical row ``i`` of a mapping executes on physical row
    ``rows[i]`` (and likewise for columns).
    """

    array_dim: int
    rows: Tuple[int, ...]
    cols: Tuple[int, ...]

    @property
    def usable_rows(self) -> int:
        return len(self.rows)

    @property
    def usable_cols(self) -> int:
        return len(self.cols)

    @property
    def usable_pes(self) -> int:
        return self.usable_rows * self.usable_cols

    def physical_row(self, logical_row: int) -> int:
        if not 0 <= logical_row < self.usable_rows:
            raise ConfigurationError(
                f"logical row {logical_row} outside {self.usable_rows}"
                " usable rows"
            )
        return self.rows[logical_row]

    def physical_col(self, logical_col: int) -> int:
        if not 0 <= logical_col < self.usable_cols:
            raise ConfigurationError(
                f"logical col {logical_col} outside {self.usable_cols}"
                " usable cols"
            )
        return self.cols[logical_col]


def live_grid(mask: AvailabilityMask) -> LiveGrid:
    """Greedy row/column retirement until the kept subgrid is fault-free.

    Deterministic: each round retires the row or column covering the most
    remaining faults (ties prefer the side with more surviving lines, then
    the lower index), so equal masks always produce equal grids.
    """
    dim = mask.array_dim
    rows: List[int] = list(range(dim))
    cols: List[int] = list(range(dim))
    if mask.is_healthy:
        return LiveGrid(array_dim=dim, rows=tuple(rows), cols=tuple(cols))

    kept_rows = set(rows)
    kept_cols = set(cols)
    faults = set(mask.dead)
    while True:
        remaining = [
            (r, c) for r, c in faults if r in kept_rows and c in kept_cols
        ]
        if not remaining:
            break
        row_counts: dict = {}
        col_counts: dict = {}
        for r, c in remaining:
            row_counts[r] = row_counts.get(r, 0) + 1
            col_counts[c] = col_counts.get(c, 0) + 1
        worst_row = min(row_counts, key=lambda r: (-row_counts[r], r))
        worst_col = min(col_counts, key=lambda c: (-col_counts[c], c))
        retire_row = (
            row_counts[worst_row] > col_counts[worst_col]
            or (
                row_counts[worst_row] == col_counts[worst_col]
                and len(kept_rows) >= len(kept_cols)
            )
        )
        if retire_row:
            kept_rows.discard(worst_row)
        else:
            kept_cols.discard(worst_col)
    return LiveGrid(
        array_dim=dim,
        rows=tuple(sorted(kept_rows)),
        cols=tuple(sorted(kept_cols)),
    )
