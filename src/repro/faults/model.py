"""Deterministic, seedable fault injection.

:class:`FaultModel` describes *what* is broken: permanently dead PEs
(explicit coordinates, whole rows/columns, or an i.i.d. stuck-at-dead
rate) and transient local-store bit flips at a configurable per-write
rate.  Everything is a pure function of the seed:

* :meth:`FaultModel.mask_for` derives the permanent-fault
  :class:`~repro.faults.mask.AvailabilityMask` for a given array size
  from ``random.Random`` seeded with ``(seed, array_dim)`` — the same
  model produces the same mask in every process, which is what makes
  fault experiments resumable and their checkpoints trustworthy.
* :func:`transient_flip` decides bit flips with a *counter-based* hash of
  ``(seed, store kind, physical PE, data coordinate, push sequence)``
  rather than a sequential RNG stream, so the decision is independent of
  the order in which an engine happens to issue the writes.  This is the
  property that lets the vectorized TileEngine and the per-PE reference
  loop corrupt exactly the same words and stay bit-identical under
  transient faults.

Flips target a mantissa bit of the stored float64 word, so a corrupted
value is always finite (no NaN/inf escapes into the adder trees).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.mask import AvailabilityMask

#: Bit flips land in the low 52 bits of the float64 word (the mantissa),
#: keeping every corrupted value finite.
_MANTISSA_BITS = 52


@dataclass(frozen=True)
class FaultModel:
    """A seeded description of injected hardware faults.

    Args:
        seed: root of all derived randomness.
        dead_pe_rate: i.i.d. probability that each PE is stuck-at-dead.
        dead_rows: physical rows that are entirely dead.
        dead_cols: physical columns that are entirely dead.
        dead_pes: explicit ``(row, col)`` dead PEs.
        bitflip_rate: per-local-store-write probability of one mantissa
            bit flip in the stored word.
    """

    seed: int = 0
    dead_pe_rate: float = 0.0
    dead_rows: Tuple[int, ...] = ()
    dead_cols: Tuple[int, ...] = ()
    dead_pes: Tuple[Tuple[int, int], ...] = ()
    bitflip_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("dead_pe_rate", "bitflip_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1], got {value}"
                )
        object.__setattr__(self, "dead_rows", tuple(sorted(set(self.dead_rows))))
        object.__setattr__(self, "dead_cols", tuple(sorted(set(self.dead_cols))))
        object.__setattr__(
            self,
            "dead_pes",
            tuple(sorted({(int(r), int(c)) for r, c in self.dead_pes})),
        )

    @property
    def has_permanent_faults(self) -> bool:
        return bool(
            self.dead_pe_rate > 0 or self.dead_rows or self.dead_cols or self.dead_pes
        )

    @property
    def has_transient_faults(self) -> bool:
        return self.bitflip_rate > 0

    @property
    def is_null(self) -> bool:
        return not (self.has_permanent_faults or self.has_transient_faults)

    def mask_for(self, array_dim: int) -> AvailabilityMask:
        """The permanent-fault availability mask for a ``D x D`` array.

        Deterministic in ``(seed, array_dim)``; explicit rows/columns/PEs
        are applied first, then the i.i.d. stuck-at sampling sweeps the
        array in row-major order.
        """
        mask = AvailabilityMask.from_failures(
            array_dim,
            dead_pes=self.dead_pes,
            dead_rows=self.dead_rows,
            dead_cols=self.dead_cols,
        )
        if self.dead_pe_rate <= 0:
            return mask
        rng = random.Random(f"flexflow-faults:{self.seed}:{array_dim}")
        sampled = set(mask.dead)
        for row in range(array_dim):
            for col in range(array_dim):
                if rng.random() < self.dead_pe_rate:
                    sampled.add((row, col))
        return AvailabilityMask(array_dim=array_dim, dead=frozenset(sampled))

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.dead_pe_rate:
            parts.append(f"dead_pe_rate={self.dead_pe_rate}")
        if self.dead_rows:
            parts.append(f"dead_rows={list(self.dead_rows)}")
        if self.dead_cols:
            parts.append(f"dead_cols={list(self.dead_cols)}")
        if self.dead_pes:
            parts.append(f"dead_pes={list(self.dead_pes)}")
        if self.bitflip_rate:
            parts.append(f"bitflip_rate={self.bitflip_rate}")
        return "FaultModel(" + ", ".join(parts) + ")"


def transient_flip(
    seed: int,
    kind: str,
    row: int,
    col: int,
    coord: int,
    sequence: int,
    rate: float,
) -> Optional[int]:
    """Bit index to flip for one local-store push, or ``None``.

    Pure function of its arguments (counter-based, not stream-based):
    ``kind`` names the store ("neuron"/"kernel"), ``row``/``col`` are the
    *physical* PE coordinates, ``coord`` the flattened data coordinate,
    ``sequence`` the store's 1-based push counter at this write.
    """
    if rate <= 0.0:
        return None
    digest = hashlib.blake2b(
        f"{seed}:{kind}:{row}:{col}:{coord}:{sequence}".encode(),
        digest_size=12,
    ).digest()
    uniform = int.from_bytes(digest[:8], "big") / 2**64
    if uniform >= rate:
        return None
    return int.from_bytes(digest[8:], "big") % _MANTISSA_BITS


def apply_flip(value: float, bit: int) -> float:
    """``value`` with mantissa ``bit`` of its float64 encoding flipped."""
    if not 0 <= bit < _MANTISSA_BITS:
        raise ConfigurationError(
            f"bit must be within [0, {_MANTISSA_BITS}), got {bit}"
        )
    word = np.float64(value).view(np.uint64)
    flipped = np.uint64(word ^ np.uint64(1 << bit))
    return float(flipped.view(np.float64))
