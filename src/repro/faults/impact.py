"""Fault impact on the rigid baselines: throughput retention models.

FlexFlow routes around faults through the mapper (smaller feasible
unrolling factors over the :class:`~repro.faults.mask.LiveGrid`), so its
degradation comes out of the real mapping search.  The three rigid
baselines have no such freedom — their dataflow hard-wires PEs into
structures that a single dead PE breaks:

* **Systolic** — each ``Ta x Ta`` array is one deep pipeline; a dead PE
  anywhere in an array breaks the shift chain, retiring the whole array.
* **2D-Mapping** — output neurons shift between row neighbours through
  per-PE FIFOs; a dead PE severs its row's shift chain, retiring the row.
* **Tiling** — each cluster is ``Tn`` multiplier lanes into one adder
  tree; a dead lane corrupts the tree sum, retiring the cluster.
* **Row-stationary** — a PE row performs one 1-D convolution with
  diagonal partial-sum accumulation; a dead PE retires its row.

The surviving structures re-execute the lost structures' share of the
work serially, so cycles scale by ``1 / retention`` — retention 0 means
the architecture is unusable under the mask.  PEs are assigned to
structures in row-major linear order (the same order the physical layout
tiles them); leftover PEs outside any structure absorb faults for free.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.faults.mask import AvailabilityMask


def _linear_dead_indices(mask: AvailabilityMask) -> set:
    """Dead PEs as row-major linear indices."""
    return {r * mask.array_dim + c for r, c in mask.dead}


def systolic_retention(mask: AvailabilityMask, array_size: int) -> float:
    """Fraction of ``Ta x Ta`` systolic arrays that survive the mask."""
    if array_size <= 0:
        raise ConfigurationError(f"array_size must be positive, got {array_size}")
    pes_per_array = array_size * array_size
    num_arrays = max(1, (mask.array_dim * mask.array_dim) // pes_per_array)
    dead = _linear_dead_indices(mask)
    surviving = sum(
        1
        for index in range(num_arrays)
        if not any(
            pe in dead
            for pe in range(index * pes_per_array, (index + 1) * pes_per_array)
        )
    )
    return surviving / num_arrays


def row_kill_retention(mask: AvailabilityMask) -> float:
    """Fraction of physical rows with no dead PE (2D-Mapping, row-stationary)."""
    dead_rows = {r for r, _ in mask.dead}
    return (mask.array_dim - len(dead_rows)) / mask.array_dim


def tiling_retention(mask: AvailabilityMask, tm: int, tn: int) -> float:
    """Fraction of ``Tm`` clusters (of ``Tn`` lanes) that survive the mask."""
    if tm <= 0 or tn <= 0:
        raise ConfigurationError(f"tm/tn must be positive, got ({tm},{tn})")
    dead = _linear_dead_indices(mask)
    total_pes = mask.array_dim * mask.array_dim
    surviving = 0
    for cluster in range(tm):
        lanes = range(cluster * tn, (cluster + 1) * tn)
        if all(pe >= total_pes or pe not in dead for pe in lanes):
            surviving += 1
    return surviving / tm
