"""Fault impact on the rigid baselines: throughput retention models.

FlexFlow routes around faults through the mapper (smaller feasible
unrolling factors over the :class:`~repro.faults.mask.LiveGrid`), so its
degradation comes out of the real mapping search.  The three rigid
baselines have no such freedom — their dataflow hard-wires PEs into
structures that a single dead PE breaks:

* **Systolic** — each ``Ta x Ta`` array is one deep pipeline; a dead PE
  anywhere in an array breaks the shift chain, retiring the whole array.
* **2D-Mapping** — output neurons shift between row neighbours through
  per-PE FIFOs; a dead PE severs its row's shift chain, retiring the row.
* **Tiling** — each cluster is ``Tn`` multiplier lanes into one adder
  tree; a dead lane corrupts the tree sum, retiring the cluster.
* **Row-stationary** — a PE row performs one 1-D convolution with
  diagonal partial-sum accumulation; a dead PE retires its row.

The surviving structures re-execute the lost structures' share of the
work serially, so cycles scale by ``1 / retention`` — retention 0 means
the architecture is unusable under the mask.  PEs are assigned to
structures in row-major linear order (the same order the physical layout
tiles them); leftover PEs outside any structure absorb faults for free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.mask import AvailabilityMask
from repro.kernels import active_kernels, count_kernel_call


def _dead_flags(mask: AvailabilityMask) -> np.ndarray:
    """Row-major boolean PE grid, True where the mask marks a PE dead."""
    flags = np.zeros(mask.array_dim * mask.array_dim, dtype=bool)
    for r, c in mask.dead:
        flags[r * mask.array_dim + c] = True
    return flags


def _surviving(flags: np.ndarray, n_struct: int, size: int) -> int:
    """Structures (row-major groups of ``size`` PEs) with no dead member.

    ``flags`` may be shorter than ``n_struct * size``: indices past its
    end model nonexistent, hence fault-free, PEs (the compiled kernel
    treats them the same way the NumPy path's zero-padding does).
    """
    suite = active_kernels()
    if suite is not None:
        alive = suite.surviving_structures(flags, n_struct, size)
        count_kernel_call("surviving_structures", suite.backend)
        return alive
    covered = n_struct * size
    if flags.size < covered:
        flags = np.pad(flags, (0, covered - flags.size))
    per_struct_dead = flags[:covered].reshape(n_struct, size).any(axis=1)
    return int((~per_struct_dead).sum())


def systolic_retention(mask: AvailabilityMask, array_size: int) -> float:
    """Fraction of ``Ta x Ta`` systolic arrays that survive the mask."""
    if array_size <= 0:
        raise ConfigurationError(f"array_size must be positive, got {array_size}")
    pes_per_array = array_size * array_size
    num_arrays = max(1, (mask.array_dim * mask.array_dim) // pes_per_array)
    covered = num_arrays * pes_per_array
    # An array larger than the grid still counts as one structure; the
    # missing (nonexistent, hence fault-free) PEs never kill it.
    flags = _dead_flags(mask)[:covered]
    return _surviving(flags, num_arrays, pes_per_array) / num_arrays


def row_kill_retention(mask: AvailabilityMask) -> float:
    """Fraction of physical rows with no dead PE (2D-Mapping, row-stationary)."""
    dead_rows = {r for r, _ in mask.dead}
    return (mask.array_dim - len(dead_rows)) / mask.array_dim


def tiling_retention(mask: AvailabilityMask, tm: int, tn: int) -> float:
    """Fraction of ``Tm`` clusters (of ``Tn`` lanes) that survive the mask."""
    if tm <= 0 or tn <= 0:
        raise ConfigurationError(f"tm/tn must be positive, got ({tm},{tn})")
    # Lane indices past the physical grid absorb faults for free.
    flags = _dead_flags(mask)[: tm * tn]
    return _surviving(flags, tm, tn) / tm
