"""Fault injection and fault-aware remapping.

The subsystem has three layers:

* :mod:`repro.faults.mask` — immutable PE availability masks and the
  greedy live-subgrid remapping (:func:`live_grid`);
* :mod:`repro.faults.model` — the seedable :class:`FaultModel` (stuck-at
  dead PEs/rows/columns, transient local-store bit flips) and the
  counter-based deterministic flip hash shared by both sim engines;
* :mod:`repro.faults.impact` — throughput-retention models for the rigid
  baselines that cannot remap around dead PEs.
"""

from repro.faults.impact import (
    row_kill_retention,
    systolic_retention,
    tiling_retention,
)
from repro.faults.mask import AvailabilityMask, LiveGrid, live_grid
from repro.faults.model import FaultModel, apply_flip, transient_flip

__all__ = [
    "AvailabilityMask",
    "LiveGrid",
    "live_grid",
    "FaultModel",
    "transient_flip",
    "apply_flip",
    "systolic_retention",
    "row_kill_retention",
    "tiling_retention",
]
