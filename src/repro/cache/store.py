"""Persistent, content-addressed result store shared across processes.

Entries live under ``<root>/<section>/<key[:2]>/<key>.json`` where the key
is a SHA-256 over the full request (:mod:`repro.cache.keys`).  The store
is safe for concurrent writers — ``--jobs N`` experiment workers share
one directory — because every write lands in a unique temp file and is
published with ``os.replace`` (atomic on POSIX), and eviction serializes
on an advisory ``fcntl`` lock where the platform provides one.  A corrupt
or truncated entry is never fatal: the hot read path *self-heals* — the
bad entry is quarantined (moved under ``<root>/.quarantine`` for post
mortems), counted, and reported as a miss so the caller recomputes and
republishes.  ``repro cache verify`` reports corruption; ``--repair``
sends bad entries through the same quarantine path.

Configuration is environment-driven so it crosses the ``spawn`` boundary
to worker processes:

* ``REPRO_CACHE`` — ``off``/``0``/``false``/``no`` disables the store
  entirely (default: on).
* ``REPRO_CACHE_DIR`` — store root (default:
  ``$XDG_CACHE_HOME/repro-flexflow`` or ``~/.cache/repro-flexflow``).
* ``REPRO_CACHE_MAX_ENTRIES`` — optional positive bound; writes beyond it
  evict oldest-mtime entries first.
* ``REPRO_CACHE_MEM_MB`` — byte budget (MiB) for the in-memory hot tier
  holding decoded entries in front of the disk store (default
  :data:`repro.cache.memtier.DEFAULT_MEM_MB`; ``0`` disables the tier
  so every hit pays the disk read).

Hit/miss/corrupt/evict counts flow into the :mod:`repro.obs` metrics
registry (``cache.lookups{section,outcome}``, ``cache.writes{section}``,
``cache.evictions``) so ``repro profile`` and the benchmark harness can
report cache effectiveness.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
from collections import OrderedDict, deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.cache.keys import CACHE_SCHEMA_VERSION
from repro.cache.memtier import DEFAULT_MEM_MB, MemoryTier
from repro.chaos import chaos_point, chaos_sleep
from repro.errors import ConfigurationError
from repro.fsutil import atomic_write_text
from repro.obs.metrics import REGISTRY

try:  # pragma: no cover - platform-dependent import
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Default store location, under the user cache directory.
DEFAULT_SUBDIR = "repro-flexflow"

#: Environment variables (read on every :func:`active_cache` call so
#: tests and subprocesses can reconfigure without reimporting).
ENV_ENABLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"
ENV_MAX_ENTRIES = "REPRO_CACHE_MAX_ENTRIES"
ENV_MEM_MB = "REPRO_CACHE_MEM_MB"

#: Sentinel distinguishing "not buffered" from a buffered ``None``.
_MISSING = object()

#: Corrupt entries are moved (never deleted) into this dot-directory,
#: which every store walk skips; operators can inspect or purge it.
QUARANTINE_DIR = ".quarantine"

_FALSEY = {"0", "off", "false", "no"}
_TRUTHY = {"1", "on", "true", "yes", ""}

#: Uniquifier for batched-flush temp names (same role as the one in
#: :mod:`repro.fsutil`, local so the flush loop stays self-contained).
_FLUSH_SEQUENCE = itertools.count()


class ResultCache:
    """One on-disk store plus a byte-budgeted memory tier in front of it.

    ``mem_budget_mb=None`` resolves the budget from ``REPRO_CACHE_MEM_MB``
    at construction (default :data:`~repro.cache.memtier.DEFAULT_MEM_MB`);
    ``0`` disables the tier so every hit pays the disk read.
    """

    def __init__(
        self,
        root: Path,
        *,
        max_entries: Optional[int] = None,
        mem_budget_mb: Optional[int] = None,
    ):
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(
                f"cache max_entries must be positive, got {max_entries}"
            )
        self.root = Path(root)
        self._root_str = str(self.root)
        self.max_entries = max_entries
        if mem_budget_mb is None:
            mem_budget_mb = _mem_mb_from_env()
        self.mem = MemoryTier(mem_budget_mb * 1024 * 1024)
        # Active deferral buffer (see :meth:`deferred`); ``None`` means
        # puts publish eagerly.  The depth counter makes nesting safe.
        self._deferred: "Optional[OrderedDict[Tuple[str, str], Any]]" = None
        self._deferred_depth = 0
        # Write-behind state: batched flushes run on one lazy daemon
        # thread so sweep wall-time excludes publish IO; :meth:`drain`
        # (and an atexit hook) give synchronization points.
        self._flush_lock = threading.Lock()
        self._flush_cond = threading.Condition(self._flush_lock)
        self._flush_backlog: "deque[OrderedDict[Tuple[str, str], Any]]" = deque()
        self._flush_jobs = 0
        self._flush_thread_running = False
        self._atexit_registered = False

    # -- paths ----------------------------------------------------------------

    def _entry_path(self, section: str, key: str) -> Path:
        return Path(self._entry_path_str(section, key))

    def _entry_path_str(self, section: str, key: str) -> str:
        # The hot read/flush paths build plain strings: ``Path`` algebra
        # is measurable overhead at hundreds of lookups per sweep.
        return os.path.join(self._root_str, section, key[:2], f"{key}.json")

    def _entry_files(self):
        if not self.root.is_dir():
            return
        for section_dir in sorted(self.root.iterdir()):
            if not section_dir.is_dir() or section_dir.name.startswith("."):
                continue  # skip quarantine and other dot-state
            yield from sorted(section_dir.glob("*/*.json"))

    def quarantine_path(self, section: str) -> Path:
        return self.root / QUARANTINE_DIR / section

    def _quarantine(self, path: Path, section: str) -> bool:
        """Move one corrupt entry aside (the self-healing read path).

        Quarantined entries stop matching lookups immediately — the next
        reader recomputes and republishes — but stay on disk for post
        mortems.  Falls back to deletion if the move itself fails; never
        raises.
        """
        # The memory tier must never outlive the disk entry it mirrors:
        # drop it first so a concurrent reader re-reads (and heals) disk.
        self.mem.invalidate(section, path.stem)
        dest = self.quarantine_path(section) / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return False
        REGISTRY.counter("cache.quarantined", section=section).inc()
        return True

    # -- core operations ------------------------------------------------------

    def get(self, section: str, key: str) -> Optional[Any]:
        """The stored payload, or ``None`` on miss/corruption (never raises)."""
        hit, payload = self.mem.get(section, key)
        if hit:
            REGISTRY.counter("cache.lookups", section=section, outcome="hit").inc()
            REGISTRY.counter("cache.memo_hits", section=section).inc()
            return payload
        if self._deferred is not None:
            # A put buffered in this very block must stay visible to its
            # own process even when the memory tier is disabled.
            buffered = self._deferred.get((section, key), _MISSING)
            if buffered is not _MISSING:
                REGISTRY.counter(
                    "cache.lookups", section=section, outcome="hit"
                ).inc()
                REGISTRY.counter("cache.memo_hits", section=section).inc()
                return buffered
        chaos_sleep("slow_io")
        path_str = self._entry_path_str(section, key)
        try:
            with open(path_str, "r") as handle:
                text = handle.read()
        except OSError:
            REGISTRY.counter("cache.lookups", section=section, outcome="miss").inc()
            return None
        entry = self._decode_entry(text, section, key)
        if entry is None:
            REGISTRY.counter(
                "cache.lookups", section=section, outcome="corrupt"
            ).inc()
            # Self-heal: a bad entry only costs one recompute, then it is
            # out of the lookup path (but kept for inspection).
            self._quarantine(Path(path_str), section)
            return None
        REGISTRY.counter("cache.lookups", section=section, outcome="hit").inc()
        self.mem.put(section, key, entry["payload"])
        return entry["payload"]

    def put(self, section: str, key: str, payload: Any) -> None:
        """Publish one entry atomically (last concurrent writer wins).

        Inside a :meth:`deferred` block the entry lands in the in-process
        memo immediately (same-process readers see it) but the disk write
        is buffered until the block exits.
        """
        if self._deferred is not None:
            self._deferred[(section, key)] = payload
            self.mem.put(section, key, payload)
            return
        self._write_entry(section, key, payload)
        if self.max_entries is not None:
            self._evict_to_limit()

    def _write_entry(self, section: str, key: str, payload: Any) -> None:
        """One atomic on-disk publish (no eviction — callers own that)."""
        chaos_sleep("slow_io")
        path = self._entry_path(section, key)
        document = {
            "schema": CACHE_SCHEMA_VERSION,
            "section": section,
            "key": key,
            "payload": payload,
        }
        try:
            # No sort_keys: payload dict order is meaning-bearing (e.g.
            # ExperimentResult rows derive their column order from it).
            # Compact separators: decode-identical, measurably faster to
            # serialize and write on sweep-sized batches.
            atomic_write_text(path, json.dumps(document, separators=(",", ":")))
        except (OSError, TypeError, ValueError):
            # A full/read-only disk or a non-JSON payload degrades to a
            # slower (uncached) run, never a crash.
            return
        if chaos_point("cache_corrupt"):
            # Truncate the just-published entry mid-document: the shape a
            # torn write or disk fault leaves behind for readers to heal.
            try:
                with open(path, "r+") as handle:
                    handle.truncate(max(1, path.stat().st_size // 2))
            except OSError:
                pass
        REGISTRY.counter("cache.writes", section=section).inc()
        self.mem.put(section, key, payload)

    @contextmanager
    def deferred(self):
        """Batch puts: buffer inside the block, publish behind the block.

        A sweep that writes hundreds of entries pays one write-behind
        flush pass (and one eviction scan) instead of per-entry publish
        IO on its own wall clock.  Duplicate puts of one key collapse to
        the last payload.  Nesting is safe — only the outermost block
        hands its buffer to the flush thread.  The memo is updated at
        ``put`` time, so same-process readers never notice the delay;
        other processes see the entries once the background flush lands
        — call :meth:`drain` first where cross-process visibility is
        required (e.g. before spawning workers that should hit warm).
        An atexit hook drains outstanding flushes so short-lived CLI and
        worker processes still publish everything they computed.
        """
        self._deferred_depth += 1
        if self._deferred_depth == 1:
            self._deferred = OrderedDict()
        try:
            yield self
        finally:
            self._deferred_depth -= 1
            if self._deferred_depth == 0:
                buffered, self._deferred = self._deferred, None
                if buffered:
                    self._enqueue_flush(buffered)
                    REGISTRY.counter("cache.deferred_flushes").inc()

    def _enqueue_flush(
        self, buffered: "OrderedDict[Tuple[str, str], Any]"
    ) -> None:
        with self._flush_lock:
            self._flush_backlog.append(buffered)
            self._flush_jobs += 1
            if not self._atexit_registered:
                self._atexit_registered = True
                atexit.register(self._drain_at_exit)
            if not self._flush_thread_running:
                self._flush_thread_running = True
                threading.Thread(
                    target=self._flush_worker,
                    name="repro-cache-flush",
                    daemon=True,
                ).start()

    def _flush_worker(self) -> None:
        """Drain the backlog, then exit (a new thread starts on demand)."""
        while True:
            with self._flush_lock:
                if not self._flush_backlog:
                    self._flush_thread_running = False
                    return
                buffered = self._flush_backlog.popleft()
            try:
                self._flush_entries(buffered)
                if self.max_entries is not None:
                    self._evict_to_limit()
            except Exception:  # never kill the thread: cache IO is best-effort
                pass
            finally:
                with self._flush_lock:
                    self._flush_jobs -= 1
                    if self._flush_jobs == 0:
                        self._flush_cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued write-behind flush has landed on disk.

        Returns ``False`` on timeout.  Call before handing the store root
        to another process (worker prewarm, shard publication) or before
        asserting on-disk state in tests.
        """
        with self._flush_lock:
            return self._flush_cond.wait_for(
                lambda: self._flush_jobs == 0, timeout
            )

    def _drain_at_exit(self) -> None:
        # Bounded: losing late cache entries only costs a recompute next
        # run, and a wedged disk must not hang interpreter shutdown.
        self.drain(timeout=10.0)

    def _flush_entries(
        self, buffered: "OrderedDict[Tuple[str, str], Any]"
    ) -> None:
        """Publish a buffered batch with one lean pass of os-level IO.

        Each entry is still a private temp file renamed into place
        (readers never see a torn write), but directory creation is
        deduplicated across the batch, paths are plain strings, and the
        write counters are bumped once per section instead of per entry.
        """
        made_dirs = set()
        pid = os.getpid()
        writes: Dict[str, int] = {}
        for (section, key), payload in buffered.items():
            chaos_sleep("slow_io")
            directory = os.path.join(self._root_str, section, key[:2])
            if directory not in made_dirs:
                try:
                    os.makedirs(directory, exist_ok=True)
                except OSError:
                    continue
                made_dirs.add(directory)
            try:
                text = json.dumps(
                    {
                        "schema": CACHE_SCHEMA_VERSION,
                        "section": section,
                        "key": key,
                        "payload": payload,
                    },
                    separators=(",", ":"),
                )
            except (TypeError, ValueError):
                continue  # non-JSON payload: skip, never crash
            final = os.path.join(directory, f"{key}.json")
            tmp = os.path.join(
                directory, f".{key}.{pid}.{next(_FLUSH_SEQUENCE)}.tmp"
            )
            try:
                fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
                try:
                    os.write(fd, text.encode("utf-8"))
                finally:
                    os.close(fd)
                os.replace(tmp, final)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                continue
            if chaos_point("cache_corrupt"):
                try:
                    with open(final, "r+") as handle:
                        handle.truncate(
                            max(1, os.path.getsize(final) // 2)
                        )
                except OSError:
                    pass
            writes[section] = writes.get(section, 0) + 1
        for section, count in writes.items():
            REGISTRY.counter("cache.writes", section=section).inc(count)

    # -- maintenance ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Entry and byte counts per section for ``repro cache stats``."""
        sections: Dict[str, Dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        for path in self._entry_files():
            section = path.parent.parent.name
            try:
                size = path.stat().st_size
            except OSError:
                continue
            bucket = sections.setdefault(section, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
            total_entries += 1
            total_bytes += size
        return {
            "root": str(self.root),
            "schema": CACHE_SCHEMA_VERSION,
            "max_entries": self.max_entries,
            "entries": total_entries,
            "bytes": total_bytes,
            "sections": sections,
            "memory": self.mem.stats(),
        }

    def verify(self, *, repair: bool = False) -> Dict[str, int]:
        """Validate every entry; with ``repair``, quarantine the bad ones.

        The repair path is the hot read path's quarantine — verify never
        deletes anything, so a false positive is always recoverable.
        """
        checked = ok = corrupt = quarantined = 0
        for path in list(self._entry_files()):
            checked += 1
            section = path.parent.parent.name
            key = path.stem
            try:
                text = path.read_text()
            except OSError:
                continue
            if self._decode_entry(text, section, key) is None:
                corrupt += 1
                if repair and self._quarantine(path, section):
                    quarantined += 1
            else:
                ok += 1
        return {
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "quarantined": quarantined,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.mem.clear()
        return removed

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _decode_entry(text: str, section: str, key: str) -> Optional[Dict[str, Any]]:
        """Parse + integrity-check one entry; ``None`` marks it corrupt/stale."""
        try:
            entry = json.loads(text)
        except ValueError:
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            return None
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None  # written by an incompatible code version
        if entry.get("section") != section or entry.get("key") != key:
            return None
        return entry

    def _evict_to_limit(self) -> None:
        """Drop oldest-mtime entries until the store fits ``max_entries``."""
        lock_path = self.root / ".lock"
        lock_file = None
        try:
            if fcntl is not None:
                lock_file = open(lock_path, "w")
                fcntl.flock(lock_file, fcntl.LOCK_EX)
            entries = []
            for path in self._entry_files():
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue
            excess = len(entries) - self.max_entries
            if excess <= 0:
                return
            entries.sort(key=lambda item: item[0])
            for _, path in entries[:excess]:
                try:
                    path.unlink()
                    REGISTRY.counter("cache.evictions").inc()
                except OSError:
                    pass
        except OSError:
            pass
        finally:
            if lock_file is not None:
                try:
                    fcntl.flock(lock_file, fcntl.LOCK_UN)
                except OSError:
                    pass
                lock_file.close()


# -- the ambient cache handle -------------------------------------------------

_instances: Dict[Tuple[str, Optional[int], int], ResultCache] = {}


def cache_enabled() -> bool:
    """Whether the persistent cache is on (``REPRO_CACHE``, default on)."""
    raw = os.environ.get(ENV_ENABLE)
    if raw is None:
        return True
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSEY:
        return False
    raise ConfigurationError(
        f"{ENV_ENABLE} must be one of on/off/1/0/true/false/yes/no,"
        f" got {raw!r}"
    )


def cache_root() -> Path:
    """The configured store root (the directory need not exist yet)."""
    configured = os.environ.get(ENV_DIR)
    if configured:
        return Path(configured)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / DEFAULT_SUBDIR


def _max_entries_from_env() -> Optional[int]:
    raw = os.environ.get(ENV_MAX_ENTRIES)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_MAX_ENTRIES} must be a positive integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"{ENV_MAX_ENTRIES} must be a positive integer, got {raw!r}"
        )
    return value


def _mem_mb_from_env() -> int:
    """The hot-tier budget in MiB (``0`` disables the tier)."""
    raw = os.environ.get(ENV_MEM_MB)
    if raw is None or not raw.strip():
        return DEFAULT_MEM_MB
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_MEM_MB} must be a non-negative integer (MiB), got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"{ENV_MEM_MB} must be a non-negative integer (MiB), got {raw!r}"
        )
    return value


#: Raw environment tuple -> resolved ``(root, max_entries)`` or ``None``
#: (disabled).  The environment is still consulted on every call — only
#: the *parsing* (path resolution, int validation) is memoized, so tests
#: and subprocesses can flip the variables without reimporting.
_resolved_env: Dict[
    Tuple[Optional[str], ...], Optional[Tuple[str, Optional[int], int]]
] = {}


def active_cache() -> Optional[ResultCache]:
    """The process-wide cache handle, or ``None`` when disabled.

    The environment is re-read on every call (cheap), so tests and
    subprocesses can flip ``REPRO_CACHE``/``REPRO_CACHE_DIR`` without
    reimporting; instances are shared per ``(root, max_entries)`` so the
    in-process memo survives across call sites.
    """
    raw = (
        os.environ.get(ENV_ENABLE),
        os.environ.get(ENV_DIR),
        os.environ.get(ENV_MAX_ENTRIES),
        os.environ.get(ENV_MEM_MB),
        os.environ.get("XDG_CACHE_HOME"),
        os.environ.get("HOME"),
    )
    try:
        resolved = _resolved_env[raw]
    except KeyError:
        resolved = (
            None
            if not cache_enabled()
            else (
                str(cache_root()),
                _max_entries_from_env(),
                _mem_mb_from_env(),
            )
        )
        if len(_resolved_env) > 64:
            _resolved_env.clear()
        _resolved_env[raw] = resolved
    if resolved is None:
        return None
    instance = _instances.get(resolved)
    if instance is None:
        instance = ResultCache(
            Path(resolved[0]),
            max_entries=resolved[1],
            mem_budget_mb=resolved[2],
        )
        _instances[resolved] = instance
    return instance


def reset_cache_handles() -> None:
    """Drop process-wide handles (and their memos); tests use this."""
    _instances.clear()
    _resolved_env.clear()


@contextmanager
def deferred_cache_publishes():
    """:meth:`ResultCache.deferred` on the active cache; no-op when off.

    Sweep-shaped call sites wrap themselves in this so a cold run
    publishes its entries in one batched flush instead of per-entry.
    """
    cache = active_cache()
    if cache is None:
        yield None
        return
    with cache.deferred():
        yield cache
