"""Persistent, content-addressed result store shared across processes.

Entries live under ``<root>/<section>/<key[:2]>/<key>.json`` where the key
is a SHA-256 over the full request (:mod:`repro.cache.keys`).  The store
is safe for concurrent writers — ``--jobs N`` experiment workers share
one directory — because every write lands in a unique temp file and is
published with ``os.replace`` (atomic on POSIX), and eviction serializes
on an advisory ``fcntl`` lock where the platform provides one.  A corrupt
or truncated entry is never fatal: the hot read path *self-heals* — the
bad entry is quarantined (moved under ``<root>/.quarantine`` for post
mortems), counted, and reported as a miss so the caller recomputes and
republishes.  ``repro cache verify`` reports corruption; ``--repair``
sends bad entries through the same quarantine path.

Configuration is environment-driven so it crosses the ``spawn`` boundary
to worker processes:

* ``REPRO_CACHE`` — ``off``/``0``/``false``/``no`` disables the store
  entirely (default: on).
* ``REPRO_CACHE_DIR`` — store root (default:
  ``$XDG_CACHE_HOME/repro-flexflow`` or ``~/.cache/repro-flexflow``).
* ``REPRO_CACHE_MAX_ENTRIES`` — optional positive bound; writes beyond it
  evict oldest-mtime entries first.

Hit/miss/corrupt/evict counts flow into the :mod:`repro.obs` metrics
registry (``cache.lookups{section,outcome}``, ``cache.writes{section}``,
``cache.evictions``) so ``repro profile`` and the benchmark harness can
report cache effectiveness.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.cache.keys import CACHE_SCHEMA_VERSION
from repro.chaos import chaos_point, chaos_sleep
from repro.errors import ConfigurationError
from repro.fsutil import atomic_write_text
from repro.obs.metrics import REGISTRY

try:  # pragma: no cover - platform-dependent import
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Default store location, under the user cache directory.
DEFAULT_SUBDIR = "repro-flexflow"

#: Environment variables (read on every :func:`active_cache` call so
#: tests and subprocesses can reconfigure without reimporting).
ENV_ENABLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"
ENV_MAX_ENTRIES = "REPRO_CACHE_MAX_ENTRIES"

#: Per-process memo bound (entries), independent of the on-disk store.
_MEMO_MAX = 4096

#: Corrupt entries are moved (never deleted) into this dot-directory,
#: which every store walk skips; operators can inspect or purge it.
QUARANTINE_DIR = ".quarantine"

_FALSEY = {"0", "off", "false", "no"}
_TRUTHY = {"1", "on", "true", "yes", ""}


class ResultCache:
    """One on-disk store plus a bounded in-process memo in front of it."""

    def __init__(self, root: Path, *, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(
                f"cache max_entries must be positive, got {max_entries}"
            )
        self.root = Path(root)
        self.max_entries = max_entries
        self._memo: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()

    # -- paths ----------------------------------------------------------------

    def _entry_path(self, section: str, key: str) -> Path:
        return self.root / section / key[:2] / f"{key}.json"

    def _entry_files(self):
        if not self.root.is_dir():
            return
        for section_dir in sorted(self.root.iterdir()):
            if not section_dir.is_dir() or section_dir.name.startswith("."):
                continue  # skip quarantine and other dot-state
            yield from sorted(section_dir.glob("*/*.json"))

    def quarantine_path(self, section: str) -> Path:
        return self.root / QUARANTINE_DIR / section

    def _quarantine(self, path: Path, section: str) -> bool:
        """Move one corrupt entry aside (the self-healing read path).

        Quarantined entries stop matching lookups immediately — the next
        reader recomputes and republishes — but stay on disk for post
        mortems.  Falls back to deletion if the move itself fails; never
        raises.
        """
        dest = self.quarantine_path(section) / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return False
        REGISTRY.counter("cache.quarantined", section=section).inc()
        return True

    # -- core operations ------------------------------------------------------

    def get(self, section: str, key: str) -> Optional[Any]:
        """The stored payload, or ``None`` on miss/corruption (never raises)."""
        memo_key = (section, key)
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            REGISTRY.counter("cache.lookups", section=section, outcome="hit").inc()
            REGISTRY.counter("cache.memo_hits", section=section).inc()
            return self._memo[memo_key]
        chaos_sleep("slow_io")
        path = self._entry_path(section, key)
        try:
            text = path.read_text()
        except OSError:
            REGISTRY.counter("cache.lookups", section=section, outcome="miss").inc()
            return None
        entry = self._decode_entry(text, section, key)
        if entry is None:
            REGISTRY.counter(
                "cache.lookups", section=section, outcome="corrupt"
            ).inc()
            # Self-heal: a bad entry only costs one recompute, then it is
            # out of the lookup path (but kept for inspection).
            self._quarantine(path, section)
            return None
        REGISTRY.counter("cache.lookups", section=section, outcome="hit").inc()
        self._remember(memo_key, entry["payload"])
        return entry["payload"]

    def put(self, section: str, key: str, payload: Any) -> None:
        """Publish one entry atomically (last concurrent writer wins)."""
        chaos_sleep("slow_io")
        path = self._entry_path(section, key)
        document = {
            "schema": CACHE_SCHEMA_VERSION,
            "section": section,
            "key": key,
            "payload": payload,
        }
        try:
            # No sort_keys: payload dict order is meaning-bearing (e.g.
            # ExperimentResult rows derive their column order from it).
            atomic_write_text(path, json.dumps(document))
        except (OSError, TypeError, ValueError):
            # A full/read-only disk or a non-JSON payload degrades to a
            # slower (uncached) run, never a crash.
            return
        if chaos_point("cache_corrupt"):
            # Truncate the just-published entry mid-document: the shape a
            # torn write or disk fault leaves behind for readers to heal.
            try:
                with open(path, "r+") as handle:
                    handle.truncate(max(1, path.stat().st_size // 2))
            except OSError:
                pass
        REGISTRY.counter("cache.writes", section=section).inc()
        self._remember((section, key), payload)
        if self.max_entries is not None:
            self._evict_to_limit()

    # -- maintenance ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Entry and byte counts per section for ``repro cache stats``."""
        sections: Dict[str, Dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        for path in self._entry_files():
            section = path.parent.parent.name
            try:
                size = path.stat().st_size
            except OSError:
                continue
            bucket = sections.setdefault(section, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
            total_entries += 1
            total_bytes += size
        return {
            "root": str(self.root),
            "schema": CACHE_SCHEMA_VERSION,
            "max_entries": self.max_entries,
            "entries": total_entries,
            "bytes": total_bytes,
            "sections": sections,
        }

    def verify(self, *, repair: bool = False) -> Dict[str, int]:
        """Validate every entry; with ``repair``, quarantine the bad ones.

        The repair path is the hot read path's quarantine — verify never
        deletes anything, so a false positive is always recoverable.
        """
        checked = ok = corrupt = quarantined = 0
        for path in list(self._entry_files()):
            checked += 1
            section = path.parent.parent.name
            key = path.stem
            try:
                text = path.read_text()
            except OSError:
                continue
            if self._decode_entry(text, section, key) is None:
                corrupt += 1
                if repair and self._quarantine(path, section):
                    quarantined += 1
            else:
                ok += 1
        return {
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "quarantined": quarantined,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._memo.clear()
        return removed

    # -- internals ------------------------------------------------------------

    def _remember(self, memo_key: Tuple[str, str], payload: Any) -> None:
        self._memo[memo_key] = payload
        self._memo.move_to_end(memo_key)
        while len(self._memo) > _MEMO_MAX:
            self._memo.popitem(last=False)

    @staticmethod
    def _decode_entry(text: str, section: str, key: str) -> Optional[Dict[str, Any]]:
        """Parse + integrity-check one entry; ``None`` marks it corrupt/stale."""
        try:
            entry = json.loads(text)
        except ValueError:
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            return None
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None  # written by an incompatible code version
        if entry.get("section") != section or entry.get("key") != key:
            return None
        return entry

    def _evict_to_limit(self) -> None:
        """Drop oldest-mtime entries until the store fits ``max_entries``."""
        lock_path = self.root / ".lock"
        lock_file = None
        try:
            if fcntl is not None:
                lock_file = open(lock_path, "w")
                fcntl.flock(lock_file, fcntl.LOCK_EX)
            entries = []
            for path in self._entry_files():
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue
            excess = len(entries) - self.max_entries
            if excess <= 0:
                return
            entries.sort(key=lambda item: item[0])
            for _, path in entries[:excess]:
                try:
                    path.unlink()
                    REGISTRY.counter("cache.evictions").inc()
                except OSError:
                    pass
        except OSError:
            pass
        finally:
            if lock_file is not None:
                try:
                    fcntl.flock(lock_file, fcntl.LOCK_UN)
                except OSError:
                    pass
                lock_file.close()


# -- the ambient cache handle -------------------------------------------------

_instances: Dict[Tuple[str, Optional[int]], ResultCache] = {}


def cache_enabled() -> bool:
    """Whether the persistent cache is on (``REPRO_CACHE``, default on)."""
    raw = os.environ.get(ENV_ENABLE)
    if raw is None:
        return True
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSEY:
        return False
    raise ConfigurationError(
        f"{ENV_ENABLE} must be one of on/off/1/0/true/false/yes/no,"
        f" got {raw!r}"
    )


def cache_root() -> Path:
    """The configured store root (the directory need not exist yet)."""
    configured = os.environ.get(ENV_DIR)
    if configured:
        return Path(configured)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / DEFAULT_SUBDIR


def _max_entries_from_env() -> Optional[int]:
    raw = os.environ.get(ENV_MAX_ENTRIES)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_MAX_ENTRIES} must be a positive integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"{ENV_MAX_ENTRIES} must be a positive integer, got {raw!r}"
        )
    return value


def active_cache() -> Optional[ResultCache]:
    """The process-wide cache handle, or ``None`` when disabled.

    The environment is re-read on every call (cheap), so tests and
    subprocesses can flip ``REPRO_CACHE``/``REPRO_CACHE_DIR`` without
    reimporting; instances are shared per ``(root, max_entries)`` so the
    in-process memo survives across call sites.
    """
    if not cache_enabled():
        return None
    root = cache_root()
    max_entries = _max_entries_from_env()
    instance_key = (str(root), max_entries)
    instance = _instances.get(instance_key)
    if instance is None:
        instance = ResultCache(root, max_entries=max_entries)
        _instances[instance_key] = instance
    return instance


def reset_cache_handles() -> None:
    """Drop process-wide handles (and their memos); tests use this."""
    _instances.clear()
