"""Persistent result cache: content-addressed, process-shared, versioned.

Tier 2 of the performance layer (see ``docs/PERFORMANCE.md``): mapping
searches, accelerator network simulations, and whole experiment results
are stored on disk keyed by a SHA-256 over the full request (shapes,
configuration, factors) plus a code-version salt, so repeated sweeps —
including ``--jobs N`` worker processes sharing one directory — pay for
each unique design point once.
"""

from repro.cache.keys import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    config_payload,
    factors_payload,
    hash_payload,
    layer_payload,
    mask_payload,
    network_payload,
)
from repro.cache.memtier import DEFAULT_MEM_MB, MemoryTier
from repro.cache.store import (
    ENV_DIR,
    ENV_ENABLE,
    ENV_MAX_ENTRIES,
    ENV_MEM_MB,
    ResultCache,
    active_cache,
    cache_enabled,
    cache_root,
    deferred_cache_publishes,
    reset_cache_handles,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MEM_MB",
    "ENV_DIR",
    "ENV_ENABLE",
    "ENV_MAX_ENTRIES",
    "ENV_MEM_MB",
    "MemoryTier",
    "ResultCache",
    "active_cache",
    "cache_enabled",
    "cache_root",
    "canonical_json",
    "config_payload",
    "deferred_cache_publishes",
    "factors_payload",
    "hash_payload",
    "layer_payload",
    "mask_payload",
    "network_payload",
    "reset_cache_handles",
]
