"""Content-addressed cache keys for simulation and mapping results.

Every persistent-cache key is the SHA-256 of a *canonical JSON* document
describing the request: the layer/network shapes, the architecture
configuration, the mapping factors, and :data:`CACHE_SCHEMA_VERSION` — a
code-version salt.  Hashing the full request (rather than trusting file
names or object identity) makes the store safe to share between worker
processes and across runs: two requests collide only if they are the
same computation, and bumping the salt orphans every entry written by
older (incompatible) code without touching the files themselves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from typing import Any, Dict, Optional

from repro.arch.serialization import config_to_dict, mask_to_dict

#: Code-version salt baked into every cache key.  Bump whenever counter
#: semantics, result schemas, or model equations change — old entries
#: become unreachable (and ``repro cache verify`` garbage-collects them).
CACHE_SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def hash_payload(section: str, payload: Any) -> str:
    """The cache key for one request in one section (64 hex chars)."""
    material = canonical_json(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "section": section,
            "payload": payload,
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def layer_payload(layer: Any) -> Dict[str, Any]:
    """Any (frozen dataclass) layer spec as key material.

    Treat the returned dict as read-only: payloads for hashable (frozen)
    specs are memoized, so one cold sweep pays ``dataclasses.asdict``
    once per distinct layer instead of once per cache lookup.
    """
    try:
        return _layer_payload_cached(layer)
    except TypeError:  # unhashable spec: build uncached
        return _build_layer_payload(layer)


def _build_layer_payload(layer: Any) -> Dict[str, Any]:
    data = dataclasses.asdict(layer)
    data["type"] = type(layer).__name__
    return data


@lru_cache(maxsize=4096)
def _layer_payload_cached(layer: Any) -> Dict[str, Any]:
    return _build_layer_payload(layer)


def network_payload(network: Any) -> Dict[str, Any]:
    """A Network's full structural identity as key material (read-only)."""
    try:
        return _network_payload_cached(network)
    except TypeError:
        return _build_network_payload(network)


def _build_network_payload(network: Any) -> Dict[str, Any]:
    return {
        "name": network.name,
        "input": dataclasses.asdict(network.input_spec),
        "layers": [layer_payload(layer) for layer in network.layers],
    }


@lru_cache(maxsize=1024)
def _network_payload_cached(network: Any) -> Dict[str, Any]:
    return _build_network_payload(network)


def config_payload(config: Any) -> Dict[str, Any]:
    """An ArchConfig (with technology and mask) as key material (read-only)."""
    try:
        return _config_payload_cached(config)
    except TypeError:
        return config_to_dict(config)


@lru_cache(maxsize=1024)
def _config_payload_cached(config: Any) -> Dict[str, Any]:
    return config_to_dict(config)


def factors_payload(factors: Any) -> Dict[str, int]:
    """Unrolling factors ``<Tm,Tn,Tr,Tc,Ti,Tj>`` as key material."""
    return {
        "tm": factors.tm,
        "tn": factors.tn,
        "tr": factors.tr,
        "tc": factors.tc,
        "ti": factors.ti,
        "tj": factors.tj,
    }


def mask_payload(mask: Optional[Any]) -> Optional[Dict[str, Any]]:
    """An optional AvailabilityMask as key material."""
    return None if mask is None else mask_to_dict(mask)
