"""Byte-budgeted sharded in-memory hot tier in front of the disk store.

The disk store is content-addressed and process-shared; this tier keeps
*decoded* payloads resident so a warm lookup costs a dict probe instead
of an ``open`` + ``json.loads``.  It replaces the old entry-counted
``_memo`` with three properties the serving fast path needs:

* **byte budget** — ``REPRO_CACHE_MEM_MB`` bounds resident bytes, not
  entry count, so a few giant sweep payloads cannot silently pin
  hundreds of megabytes.  Entries are charged their canonical-JSON
  length (the same text the disk entry stores), evicted LRU per shard;
* **sharding** — the tier is probed from the event loop, inline worker
  threads, and the write-behind flush thread at once; N independently
  locked shards keep the hot path contention-free (the old ``_memo``
  OrderedDict had no lock at all);
* **digest validation** — every resident entry carries a SHA-256 over
  its canonical payload text.  A ``put`` that changes a key's digest
  replaces the entry and counts ``cache.mem_invalidations``; quarantine
  and repair call :meth:`invalidate` so a corrupt disk entry can never
  keep serving from memory.

Metrics: ``cache.mem_hits{section}`` / ``cache.mem_misses{section}`` /
``cache.mem_evictions`` / ``cache.mem_invalidations`` counters and
``cache.mem_bytes`` / ``cache.mem_entries`` gauges.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import REGISTRY

#: Default budget (MiB) when ``REPRO_CACHE_MEM_MB`` is unset.
DEFAULT_MEM_MB = 64

#: Independently locked LRU shards (keys spread by hash).
SHARD_COUNT = 8

#: Flat per-entry overhead charged on top of the payload text: the dict
#: slot, key strings, and bookkeeping tuple are not free.
ENTRY_OVERHEAD_BYTES = 256


def _encode(payload: Any) -> Optional[str]:
    """Canonical payload text (the disk entry's byte form), or ``None``
    when the payload is not JSON-serializable (such entries skip the
    tier the same way they skip the disk)."""
    try:
        return json.dumps(payload, separators=(",", ":"))
    except (TypeError, ValueError):
        return None


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def payload_digest(payload: Any) -> Optional[str]:
    """The digest :class:`MemoryTier` would assign ``payload`` (or ``None``
    for unserializable payloads).  External coherence checks — the serve
    hot path — compare this against :meth:`MemoryTier.digest`."""
    text = _encode(payload)
    return None if text is None else _digest(text)


class _Shard:
    """One locked LRU: ``(section, key) -> (payload, nbytes, digest)``."""

    __slots__ = ("lock", "entries", "bytes")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: "OrderedDict[Tuple[str, str], Tuple[Any, int, str]]" = (
            OrderedDict()
        )
        self.bytes = 0


class MemoryTier:
    """The sharded, byte-budgeted, digest-validated hot tier."""

    def __init__(
        self, budget_bytes: int, *, shards: int = SHARD_COUNT
    ) -> None:
        self.budget_bytes = max(0, int(budget_bytes))
        self._shards = [_Shard() for _ in range(max(1, shards))]
        self._shard_budget = self.budget_bytes // len(self._shards)

    @property
    def enabled(self) -> bool:
        return self.budget_bytes > 0

    def _shard_for(self, section: str, key: str) -> _Shard:
        return self._shards[hash((section, key)) % len(self._shards)]

    # -- operations -----------------------------------------------------------

    def get(self, section: str, key: str) -> Tuple[bool, Any]:
        """``(hit, payload)`` — the flag disambiguates a stored ``None``."""
        if not self.enabled:
            return False, None
        shard = self._shard_for(section, key)
        entry_key = (section, key)
        with shard.lock:
            entry = shard.entries.get(entry_key)
            if entry is None:
                REGISTRY.counter("cache.mem_misses", section=section).inc()
                return False, None
            shard.entries.move_to_end(entry_key)
        REGISTRY.counter("cache.mem_hits", section=section).inc()
        return True, entry[0]

    def put(self, section: str, key: str, payload: Any) -> None:
        """Admit (or refresh) one decoded entry, evicting LRU to budget."""
        if not self.enabled:
            return
        text = _encode(payload)
        if text is None:
            return
        nbytes = len(text) + ENTRY_OVERHEAD_BYTES
        if nbytes > max(self._shard_budget, 1):
            return  # larger than a whole shard: not worth caching
        digest = _digest(text)
        shard = self._shard_for(section, key)
        entry_key = (section, key)
        evicted = invalidated = 0
        with shard.lock:
            previous = shard.entries.pop(entry_key, None)
            if previous is not None:
                shard.bytes -= previous[1]
                if previous[2] != digest:
                    invalidated = 1
            shard.entries[entry_key] = (payload, nbytes, digest)
            shard.bytes += nbytes
            while shard.bytes > self._shard_budget and shard.entries:
                _, (_, dropped_bytes, _) = shard.entries.popitem(last=False)
                shard.bytes -= dropped_bytes
                evicted += 1
        if invalidated:
            REGISTRY.counter("cache.mem_invalidations").inc()
        if evicted:
            REGISTRY.counter("cache.mem_evictions").inc(evicted)
        self._publish_gauges()

    def digest(self, section: str, key: str) -> Optional[str]:
        """The resident entry's payload digest, or ``None`` when absent.

        The serve layer's hot response path validates its pre-encoded
        response bytes against this digest, so a quarantined or replaced
        entry can never keep serving stale bytes.  Counts as a use for
        LRU purposes, but not as a hit/miss (the caller is probing
        coherence, not reading the payload).
        """
        if not self.enabled:
            return None
        shard = self._shard_for(section, key)
        entry_key = (section, key)
        with shard.lock:
            entry = shard.entries.get(entry_key)
            if entry is None:
                return None
            shard.entries.move_to_end(entry_key)
            return entry[2]

    def invalidate(self, section: str, key: str) -> bool:
        """Drop one entry (quarantine/repair path); ``True`` if present."""
        shard = self._shard_for(section, key)
        with shard.lock:
            entry = shard.entries.pop((section, key), None)
            if entry is None:
                return False
            shard.bytes -= entry[1]
        REGISTRY.counter("cache.mem_invalidations").inc()
        self._publish_gauges()
        return True

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.bytes = 0
        self._publish_gauges()

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        entries = 0
        resident = 0
        for shard in self._shards:
            with shard.lock:
                entries += len(shard.entries)
                resident += shard.bytes
        return {
            "budget_bytes": self.budget_bytes,
            "entries": entries,
            "bytes": resident,
            "shards": len(self._shards),
        }

    def _publish_gauges(self) -> None:
        entries = 0
        resident = 0
        for shard in self._shards:
            entries += len(shard.entries)
            resident += shard.bytes
        REGISTRY.gauge("cache.mem_bytes").set(resident)
        REGISTRY.gauge("cache.mem_entries").set(entries)
