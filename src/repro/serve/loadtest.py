"""Load-test client and harness for the serve front-end.

Three layers, each usable on its own:

* :class:`ServeClient` — a tiny blocking HTTP client (stdlib
  ``http.client``) for one connection; tests, the CI smoke job, and the
  benchmark all talk to the service through it;
* :func:`start_server` — boot ``repro serve`` as a subprocess on an
  ephemeral port and wait for readiness;
* :func:`run_load_test` — the measurement protocol behind the committed
  ``serve`` numbers in ``BENCH_headline.json``:

  1. **dedup** — N identical concurrent cold requests; the
     ``serve.backend_computations`` counter delta proves exactly one
     backend computation ran, the ``serve.coalesced`` delta is the
     dedup hit count;
  2. **cold** — distinct uncached requests, timed individually;
  3. **warm** — the same requests replayed; every reply must come from
     the cache, and the throughput ratio warm/cold is the headline
     guarded by ``benchmarks/capture_baseline.py --check``.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: The ready line ``repro serve`` prints once bound.
_READY_RE = re.compile(r"serving on http://([0-9.]+):(\d+)")


class ServeClient:
    """One keep-alive connection to a serve instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Response headers of the last completed request (lower-cased
        #: names) — how callers read ``retry-after`` off a 503.
        self.last_headers: Dict[str, str] = {}
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Tuple[int, Any]:
        """One request; returns ``(status, decoded JSON body)``."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException):
            # One reconnect: the server may have idled out the keep-alive.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        self.last_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        try:
            decoded = json.loads(raw) if raw else None
        except ValueError:
            decoded = {"raw": raw.decode("utf-8", "replace")}
        return response.status, decoded

    def get(self, path: str) -> Tuple[int, Any]:
        return self.request("GET", path)

    def post(self, path: str, body: Any) -> Tuple[int, Any]:
        return self.request("POST", path, body)

    def healthz(self) -> bool:
        try:
            status, body = self.get("/healthz")
        except OSError:
            return False
        return status == 200 and isinstance(body, dict)

    def metrics(self) -> Dict[str, Any]:
        status, body = self.get("/metrics")
        if status != 200:
            raise ExperimentError(f"/metrics answered {status}: {body}")
        return body["metrics"]

    def health(self) -> Dict[str, Any]:
        """The `/healthz` payload (``{"status": ...}``), best-effort."""
        try:
            _, body = self.get("/healthz")
        except OSError:
            return {"status": "unreachable"}
        return body if isinstance(body, dict) else {"status": "?"}

    def compute(self, kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
        status, payload = self.post(f"/v1/{kind}", body)
        if status != 200:
            raise ExperimentError(f"/v1/{kind} answered {status}: {payload}")
        return payload

    def compute_raw(self, kind: str, encoded: bytes) -> bytes:
        """One compute request from pre-encoded body bytes, JSON codec
        free on the client: the warm-latency protocol times the server
        tiers, so the client's constant ``json.dumps``/``loads`` cost is
        kept out of the loop (identically for every leg)."""
        conn = self._connection()
        headers = {"Content-Type": "application/json"}
        try:
            conn.request("POST", f"/v1/{kind}", body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException):
            self.close()
            conn = self._connection()
            conn.request("POST", f"/v1/{kind}", body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        if response.status != 200:
            raise ExperimentError(
                f"/v1/{kind} answered {response.status}: {raw[:200]!r}"
            )
        return raw

    def compute_with_retry(
        self,
        kind: str,
        body: Dict[str, Any],
        *,
        max_tries: int = 8,
        backoff_s: float = 0.1,
    ) -> Tuple[Dict[str, Any], int]:
        """``compute()`` that retries deliberate 503s (shed/breaker-open).

        A well-behaved client's loop: honor ``Retry-After`` (capped at
        1s so harness runs stay fast), give up on any other error.
        Returns ``(payload, retries_used)``.
        """
        last: Tuple[int, Any] = (0, None)
        for attempt in range(max_tries):
            status, payload = self.post(f"/v1/{kind}", body)
            if status == 200:
                return payload, attempt
            last = (status, payload)
            if status != 503:
                break
            try:
                retry_after = float(self.last_headers.get("retry-after", 0))
            except ValueError:
                retry_after = 0.0
            time.sleep(min(max(backoff_s, retry_after), 1.0))
        raise ExperimentError(
            f"/v1/{kind} answered {last[0]} after {max_tries} tries: {last[1]}"
        )


def metric_total(snapshot: Dict[str, Any], name: str) -> float:
    """Sum one metric across its label variants in a registry snapshot."""
    total = 0.0
    for series, value in snapshot.items():
        if series == name or series.startswith(name + "{"):
            total += value
    return total


def start_server(
    *,
    jobs: int = 2,
    extra_args: Sequence[str] = (),
    env: Optional[Dict[str, str]] = None,
    ready_timeout_s: float = 60.0,
) -> Tuple[subprocess.Popen, ServeClient]:
    """Boot ``repro serve`` on an ephemeral port; wait for readiness.

    Returns the process and a connected client.  The caller owns the
    process (``proc.terminate()`` when done).
    """
    run_env = dict(os.environ if env is None else env)
    run_env.setdefault("PYTHONUNBUFFERED", "1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--jobs", str(jobs), *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=run_env,
    )
    deadline = time.monotonic() + ready_timeout_s
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _READY_RE.search(line)
        if match:
            client = ServeClient(match.group(1), int(match.group(2)))
            for _ in range(200):
                if client.healthz():
                    return proc, client
                time.sleep(0.05)
            break
    proc.terminate()
    out = line + (proc.stdout.read() or "")
    raise ExperimentError(f"serve did not become ready; output:\n{out}")


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (numpy's default method).

    The previous rounded-index picker was biased on small samples — p95
    of 10 points landed on an actual observation (the 9th or 10th)
    instead of interpolating between them, overstating tail latency by
    up to half an inter-sample gap.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = min(max(fraction, 0.0), 1.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


#: Backwards-compatible alias (the harness predates the public name).
_percentile = percentile


def _timed_phase(
    client: ServeClient,
    requests: List[Tuple[str, Dict[str, Any]]],
    *,
    concurrency: int = 4,
) -> Dict[str, Any]:
    """Drive ``requests`` through ``concurrency`` worker threads.

    Cold and warm phases run at the *same* concurrency, so the
    throughput ratio compares the service paths, not the client shape.
    """
    latencies: List[float] = []
    sources: Dict[str, int] = {}
    errors: List[str] = []
    lock = threading.Lock()
    shards = [requests[i::concurrency] for i in range(concurrency)]

    def drive(shard: List[Tuple[str, Dict[str, Any]]]) -> None:
        worker = ServeClient(client.host, client.port, timeout=client.timeout)
        local_lat, local_src = [], {}
        try:
            for kind, body in shard:
                t0 = time.perf_counter()
                payload = worker.compute(kind, body)
                local_lat.append((time.perf_counter() - t0) * 1000.0)
                source = payload.get("source", "?")
                local_src[source] = local_src.get(source, 0) + 1
        except Exception as exc:  # collected, surfaced after the join
            with lock:
                errors.append(str(exc))
        finally:
            worker.close()
        with lock:
            latencies.extend(local_lat)
            for source, count in local_src.items():
                sources[source] = sources.get(source, 0) + count

    started = time.perf_counter()
    threads = [
        threading.Thread(target=drive, args=(shard,))
        for shard in shards if shard
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise ExperimentError(
            f"load phase: {len(errors)} worker(s) failed; first: {errors[0]}"
        )
    return {
        "requests": len(requests),
        "concurrency": concurrency,
        "seconds": elapsed,
        "rps": len(requests) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile(latencies, 0.50),
        "p95_ms": percentile(latencies, 0.95),
        "p99_ms": percentile(latencies, 0.99),
        "sources": sources,
    }


def run_load_test(
    client: ServeClient,
    *,
    fanout: int = 16,
    warm_rounds: int = 20,
) -> Dict[str, Any]:
    """The full measurement protocol against a freshly booted server.

    The server must start with an empty ``serve`` cache section for the
    cold numbers to mean anything (:func:`start_server` with a
    ``REPRO_CACHE_DIR`` pointing at a fresh directory).
    """
    # -- phase 1: dedup — N identical concurrent cold requests ------------
    before = client.metrics()
    dedup_body = {"workload": "AlexNet", "dims": [8, 16, 32]}
    barrier = threading.Barrier(fanout)
    failures: List[str] = []

    def one_request() -> None:
        worker = ServeClient(client.host, client.port, timeout=client.timeout)
        try:
            barrier.wait(timeout=30)
            worker.compute("dse", dedup_body)
        except Exception as exc:  # collected, asserted below
            failures.append(str(exc))
        finally:
            worker.close()

    threads = [threading.Thread(target=one_request) for _ in range(fanout)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise ExperimentError(
            f"dedup phase: {len(failures)} of {fanout} requests failed;"
            f" first: {failures[0]}"
        )
    after = client.metrics()

    def delta(name: str) -> float:
        return metric_total(after, name) - metric_total(before, name)

    dedup = {
        "fanout": fanout,
        "backend_computations": delta("serve.backend_computations"),
        "coalesced": delta("serve.coalesced"),
        "dedup_hit_rate": delta("serve.coalesced") / fanout,
    }

    # -- phase 2/3: cold vs warm throughput -------------------------------
    # Cold points are wide array-scale sweeps (32 dims each, offset per
    # workload so every key is distinct); warm replays the same points.
    points: List[Tuple[str, Dict[str, Any]]] = []
    for offset, workload in enumerate(
        ("VGG-11", "AlexNet", "HG", "FR", "LeNet-5", "PV")
    ):
        dims = [offset + 1 + 8 * step for step in range(32)]
        points.append(("dse", {"workload": workload, "dims": dims}))
    cold = _timed_phase(client, points)
    warm = _timed_phase(client, points * warm_rounds)
    if warm["sources"].get("cache", 0) != warm["requests"]:
        raise ExperimentError(
            f"warm phase was not fully cached: {warm['sources']}"
        )

    snapshot = client.metrics()
    return {
        "dedup": dedup,
        "cold": cold,
        "warm": warm,
        "warm_over_cold_throughput": (
            warm["rps"] / cold["rps"] if cold["rps"] > 0 else 0.0
        ),
        "responses_5xx": metric_total(snapshot, "serve.responses{code=500}"),
    }


# -- the serving fast path protocol -------------------------------------------
#
# Three phases behind the ``serve_fastpath`` section of
# ``BENCH_headline.json`` (each boots its own server so knobs and cache
# state are controlled):
#
# 1. **fused** — N *compatible* cold DSE requests (same workload,
#    different dims) fired concurrently against a batching server with a
#    generous window must collapse to exactly ONE backend dispatch, and
#    every per-point payload must be byte-identical to what a
#    batching-off server computes for the same request;
# 2. **warm_memory** — one warmed disk store measured through two
#    servers: ``REPRO_CACHE_MEM_MB=0`` (every hit pays the disk read)
#    vs the memory tier + hot response path.  The p50 ratio is the
#    memory-tier headline;
# 3. **batched_cold** — a mixed burst (several workloads x several
#    overlapping-dims requests each) against batching-off vs batching-on
#    servers; fusing the redundant concurrent work is the throughput
#    headline.


def _concurrent_burst(
    client: ServeClient, requests: List[Tuple[str, Dict[str, Any]]]
) -> Tuple[float, List[Dict[str, Any]]]:
    """Fire every request at once (one thread each); keep response order.

    Returns ``(elapsed_seconds, payloads)``.  Raises on any failure.
    """
    payloads: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    errors: List[str] = []
    barrier = threading.Barrier(len(requests))

    def one(index: int, kind: str, body: Dict[str, Any]) -> None:
        worker = ServeClient(client.host, client.port, timeout=client.timeout)
        try:
            barrier.wait(timeout=60)
            payloads[index] = worker.compute(kind, body)
        except Exception as exc:
            errors.append(str(exc))
        finally:
            worker.close()

    threads = [
        threading.Thread(target=one, args=(index, kind, body))
        for index, (kind, body) in enumerate(requests)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise ExperimentError(
            f"burst: {len(errors)} request(s) failed; first: {errors[0]}"
        )
    return elapsed, payloads  # type: ignore[return-value]


def _fastpath_fused_phase(jobs: int, fanout: int) -> Dict[str, Any]:
    """Phase 1: the fused-dispatch floor plus singleton byte-parity."""
    requests = [
        ("dse", {"workload": "AlexNet", "dims": [4 + i, 5 + i, 6 + i]})
        for i in range(fanout)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-fastpath-") as tmp:
        env = dict(os.environ)
        env.update(REPRO_CACHE="on", REPRO_CACHE_DIR=tmp, REPRO_CHAOS="off")
        proc, client = start_server(
            jobs=jobs,
            extra_args=[
                "--batch-window-ms", "500", "--batch-max", str(fanout),
            ],
            env=env,
        )
        try:
            before = client.metrics()
            _, batched = _concurrent_burst(client, requests)
            after = client.metrics()
        finally:
            client.close()
            proc.terminate()
            proc.wait(timeout=30)

    # The reference leg: the same requests against a batching-off server
    # with its own cold cache; per-point payloads must match byte-wise.
    with tempfile.TemporaryDirectory(prefix="repro-fastpath-ref-") as tmp:
        env = dict(os.environ)
        env.update(REPRO_CACHE="on", REPRO_CACHE_DIR=tmp, REPRO_CHAOS="off")
        proc, client = start_server(
            jobs=jobs, extra_args=["--batch-window-ms", "0"], env=env
        )
        try:
            singleton = [
                client.compute(kind, body) for kind, body in requests
            ]
        finally:
            client.close()
            proc.terminate()
            proc.wait(timeout=30)

    matches = sum(
        json.dumps(b["result"]) == json.dumps(s["result"])
        for b, s in zip(batched, singleton)
    )

    def delta(name: str) -> float:
        return metric_total(after, name) - metric_total(before, name)

    return {
        "fanout": fanout,
        "backend_computations": delta("serve.backend_computations"),
        "batched": delta("serve.batched"),
        "batch_failovers": delta("serve.batch_failovers"),
        "singleton_matches": matches,
        "responses_5xx": delta("serve.responses{code=500}"),
    }


def _fastpath_warm_phase(jobs: int, warm_rounds: int) -> Dict[str, Any]:
    """Phase 2: warm p50 through the disk tier vs the memory tier.

    One disk store is warmed once, then measured through two servers:
    ``REPRO_CACHE_MEM_MB=0`` (every warm hit pays the disk entry read)
    and the default memory tier (plus the pre-encoded hot response
    path).  Requests are timed serially over pre-encoded body bytes —
    the client's constant JSON codec and thread-scheduling costs would
    otherwise dilute the tier comparison identically on both legs.
    """
    points: List[Tuple[str, Dict[str, Any]]] = []
    for offset, workload in enumerate(
        ("VGG-11", "AlexNet", "HG", "FR", "LeNet-5", "PV")
    ):
        dims = [offset + 1 + 8 * step for step in range(32)]
        points.append(("dse", {"workload": workload, "dims": dims}))
    encoded = [
        (kind, json.dumps(body).encode("utf-8")) for kind, body in points
    ]

    with tempfile.TemporaryDirectory(prefix="repro-fastpath-warm-") as tmp:
        legs: Dict[str, Dict[str, Any]] = {}
        hot_hits = 0.0
        for leg, mem_mb in (("disk", "0"), ("memory", "")):
            env = dict(os.environ)
            env.update(
                REPRO_CACHE="on", REPRO_CACHE_DIR=tmp, REPRO_CHAOS="off"
            )
            if mem_mb:
                env["REPRO_CACHE_MEM_MB"] = mem_mb
            else:
                env.pop("REPRO_CACHE_MEM_MB", None)
            proc, client = start_server(jobs=jobs, env=env)
            try:
                # Populate (the disk store on the first leg, the memory
                # tier and hot responses on the second), then assert the
                # replay is fully cache-served before timing anything.
                for kind, body in points:
                    client.compute(kind, body)
                for kind, body in points:
                    payload = client.compute(kind, body)
                    if payload.get("source") not in ("cache", "coalesced"):
                        raise ExperimentError(
                            f"{leg} warm leg not cached: {payload.get('source')}"
                        )
                latencies: List[float] = []
                started = time.perf_counter()
                for _ in range(warm_rounds):
                    for kind, raw in encoded:
                        t0 = time.perf_counter()
                        client.compute_raw(kind, raw)
                        latencies.append((time.perf_counter() - t0) * 1000.0)
                elapsed = time.perf_counter() - started
                legs[leg] = {
                    "p50_ms": percentile(latencies, 0.50),
                    "p95_ms": percentile(latencies, 0.95),
                    "rps": len(latencies) / elapsed if elapsed > 0 else 0.0,
                }
                if leg == "memory":
                    hot_hits = metric_total(
                        client.metrics(), "serve.hot_path"
                    )
            finally:
                client.close()
                proc.terminate()
                proc.wait(timeout=30)
    disk_p50 = legs["disk"]["p50_ms"]
    mem_p50 = legs["memory"]["p50_ms"]
    return {
        "disk_p50_ms": disk_p50,
        "memory_p50_ms": mem_p50,
        "mem_over_disk_p50": mem_p50 / disk_p50 if disk_p50 > 0 else 0.0,
        "disk_rps": legs["disk"]["rps"],
        "memory_rps": legs["memory"]["rps"],
        "hot_path_hits": hot_hits,
    }


def _fastpath_cold_phase(members: int = 8) -> Dict[str, Any]:
    """Phase 3: one compatible cold burst, batching off vs on.

    The burst is ``members`` compatible DSE requests over one heavy
    workload, each asking for the same 31 shared dims plus one distinct
    dim.  The pool runs with ``jobs == members``, so in the unbatched
    leg every request's sweep starts before any other finishes — none of
    them can see the others' cache publishes, and each redundantly
    evaluates all 32 dims.  The batched leg fuses the burst into one
    dispatch that evaluates the 39-dim union once.  The redundant work
    is exactly what cross-request batching exists to collapse, and
    (unlike a fixed-overhead-amortization protocol) the effect does not
    depend on core count: with ``jobs`` workers all admitted at once,
    the OS timeshares them and the publish race holds everywhere.

    Each leg warms one-time process costs (imports, memoized accelerator
    state in every worker) with untimed single-dim requests on dims the
    burst does not use.
    """
    shared = [2 + 3 * step for step in range(31)]
    requests = [
        ("dse", {"workload": "VGG-11", "dims": shared + [200 + member]})
        for member in range(members)
    ]
    absorb = [
        ("dse", {"workload": "VGG-11", "dims": [240 + worker]})
        for worker in range(members)
    ]

    timings: Dict[str, float] = {}
    dispatches: Dict[str, float] = {}
    for leg, window_ms in (("unbatched", "0"), ("batched", "150")):
        with tempfile.TemporaryDirectory(prefix="repro-fastpath-cold-") as tmp:
            env = dict(os.environ)
            env.update(
                REPRO_CACHE="on", REPRO_CACHE_DIR=tmp, REPRO_CHAOS="off"
            )
            proc, client = start_server(
                jobs=members,
                extra_args=[
                    "--batch-window-ms", window_ms,
                    "--batch-max", str(members),
                ],
                env=env,
            )
            try:
                for kind, body in absorb:
                    client.compute(kind, body)
                before = client.metrics()
                elapsed, _ = _concurrent_burst(client, requests)
                after = client.metrics()
                timings[leg] = elapsed
                dispatches[leg] = metric_total(
                    after, "serve.backend_computations"
                ) - metric_total(before, "serve.backend_computations")
            finally:
                client.close()
                proc.terminate()
                proc.wait(timeout=30)
    unbatched_rps = len(requests) / timings["unbatched"]
    batched_rps = len(requests) / timings["batched"]
    return {
        "requests": len(requests),
        "unbatched_seconds": timings["unbatched"],
        "batched_seconds": timings["batched"],
        "unbatched_dispatches": dispatches["unbatched"],
        "batched_dispatches": dispatches["batched"],
        "unbatched_rps": unbatched_rps,
        "batched_rps": batched_rps,
        "batched_over_unbatched_throughput": (
            batched_rps / unbatched_rps if unbatched_rps > 0 else 0.0
        ),
    }


def run_fastpath_test(
    *, jobs: int = 2, fanout: int = 16, warm_rounds: int = 20
) -> Dict[str, Any]:
    """The full serving-fast-path protocol (fused, warm memory, cold)."""
    return {
        "fused": _fastpath_fused_phase(jobs, fanout),
        "warm_memory": _fastpath_warm_phase(jobs, warm_rounds),
        "batched_cold": _fastpath_cold_phase(),
    }
