"""Load-test client and harness for the serve front-end.

Three layers, each usable on its own:

* :class:`ServeClient` — a tiny blocking HTTP client (stdlib
  ``http.client``) for one connection; tests, the CI smoke job, and the
  benchmark all talk to the service through it;
* :func:`start_server` — boot ``repro serve`` as a subprocess on an
  ephemeral port and wait for readiness;
* :func:`run_load_test` — the measurement protocol behind the committed
  ``serve`` numbers in ``BENCH_headline.json``:

  1. **dedup** — N identical concurrent cold requests; the
     ``serve.backend_computations`` counter delta proves exactly one
     backend computation ran, the ``serve.coalesced`` delta is the
     dedup hit count;
  2. **cold** — distinct uncached requests, timed individually;
  3. **warm** — the same requests replayed; every reply must come from
     the cache, and the throughput ratio warm/cold is the headline
     guarded by ``benchmarks/capture_baseline.py --check``.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: The ready line ``repro serve`` prints once bound.
_READY_RE = re.compile(r"serving on http://([0-9.]+):(\d+)")


class ServeClient:
    """One keep-alive connection to a serve instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Response headers of the last completed request (lower-cased
        #: names) — how callers read ``retry-after`` off a 503.
        self.last_headers: Dict[str, str] = {}
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Tuple[int, Any]:
        """One request; returns ``(status, decoded JSON body)``."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException):
            # One reconnect: the server may have idled out the keep-alive.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        self.last_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        try:
            decoded = json.loads(raw) if raw else None
        except ValueError:
            decoded = {"raw": raw.decode("utf-8", "replace")}
        return response.status, decoded

    def get(self, path: str) -> Tuple[int, Any]:
        return self.request("GET", path)

    def post(self, path: str, body: Any) -> Tuple[int, Any]:
        return self.request("POST", path, body)

    def healthz(self) -> bool:
        try:
            status, body = self.get("/healthz")
        except OSError:
            return False
        return status == 200 and isinstance(body, dict)

    def metrics(self) -> Dict[str, Any]:
        status, body = self.get("/metrics")
        if status != 200:
            raise ExperimentError(f"/metrics answered {status}: {body}")
        return body["metrics"]

    def health(self) -> Dict[str, Any]:
        """The `/healthz` payload (``{"status": ...}``), best-effort."""
        try:
            _, body = self.get("/healthz")
        except OSError:
            return {"status": "unreachable"}
        return body if isinstance(body, dict) else {"status": "?"}

    def compute(self, kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
        status, payload = self.post(f"/v1/{kind}", body)
        if status != 200:
            raise ExperimentError(f"/v1/{kind} answered {status}: {payload}")
        return payload

    def compute_with_retry(
        self,
        kind: str,
        body: Dict[str, Any],
        *,
        max_tries: int = 8,
        backoff_s: float = 0.1,
    ) -> Tuple[Dict[str, Any], int]:
        """``compute()`` that retries deliberate 503s (shed/breaker-open).

        A well-behaved client's loop: honor ``Retry-After`` (capped at
        1s so harness runs stay fast), give up on any other error.
        Returns ``(payload, retries_used)``.
        """
        last: Tuple[int, Any] = (0, None)
        for attempt in range(max_tries):
            status, payload = self.post(f"/v1/{kind}", body)
            if status == 200:
                return payload, attempt
            last = (status, payload)
            if status != 503:
                break
            try:
                retry_after = float(self.last_headers.get("retry-after", 0))
            except ValueError:
                retry_after = 0.0
            time.sleep(min(max(backoff_s, retry_after), 1.0))
        raise ExperimentError(
            f"/v1/{kind} answered {last[0]} after {max_tries} tries: {last[1]}"
        )


def metric_total(snapshot: Dict[str, Any], name: str) -> float:
    """Sum one metric across its label variants in a registry snapshot."""
    total = 0.0
    for series, value in snapshot.items():
        if series == name or series.startswith(name + "{"):
            total += value
    return total


def start_server(
    *,
    jobs: int = 2,
    extra_args: Sequence[str] = (),
    env: Optional[Dict[str, str]] = None,
    ready_timeout_s: float = 60.0,
) -> Tuple[subprocess.Popen, ServeClient]:
    """Boot ``repro serve`` on an ephemeral port; wait for readiness.

    Returns the process and a connected client.  The caller owns the
    process (``proc.terminate()`` when done).
    """
    run_env = dict(os.environ if env is None else env)
    run_env.setdefault("PYTHONUNBUFFERED", "1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--jobs", str(jobs), *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=run_env,
    )
    deadline = time.monotonic() + ready_timeout_s
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _READY_RE.search(line)
        if match:
            client = ServeClient(match.group(1), int(match.group(2)))
            for _ in range(200):
                if client.healthz():
                    return proc, client
                time.sleep(0.05)
            break
    proc.terminate()
    out = line + (proc.stdout.read() or "")
    raise ExperimentError(f"serve did not become ready; output:\n{out}")


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _timed_phase(
    client: ServeClient,
    requests: List[Tuple[str, Dict[str, Any]]],
    *,
    concurrency: int = 4,
) -> Dict[str, Any]:
    """Drive ``requests`` through ``concurrency`` worker threads.

    Cold and warm phases run at the *same* concurrency, so the
    throughput ratio compares the service paths, not the client shape.
    """
    latencies: List[float] = []
    sources: Dict[str, int] = {}
    errors: List[str] = []
    lock = threading.Lock()
    shards = [requests[i::concurrency] for i in range(concurrency)]

    def drive(shard: List[Tuple[str, Dict[str, Any]]]) -> None:
        worker = ServeClient(client.host, client.port, timeout=client.timeout)
        local_lat, local_src = [], {}
        try:
            for kind, body in shard:
                t0 = time.perf_counter()
                payload = worker.compute(kind, body)
                local_lat.append((time.perf_counter() - t0) * 1000.0)
                source = payload.get("source", "?")
                local_src[source] = local_src.get(source, 0) + 1
        except Exception as exc:  # collected, surfaced after the join
            with lock:
                errors.append(str(exc))
        finally:
            worker.close()
        with lock:
            latencies.extend(local_lat)
            for source, count in local_src.items():
                sources[source] = sources.get(source, 0) + count

    started = time.perf_counter()
    threads = [
        threading.Thread(target=drive, args=(shard,))
        for shard in shards if shard
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise ExperimentError(
            f"load phase: {len(errors)} worker(s) failed; first: {errors[0]}"
        )
    return {
        "requests": len(requests),
        "concurrency": concurrency,
        "seconds": elapsed,
        "rps": len(requests) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50),
        "p95_ms": _percentile(latencies, 0.95),
        "sources": sources,
    }


def run_load_test(
    client: ServeClient,
    *,
    fanout: int = 16,
    warm_rounds: int = 20,
) -> Dict[str, Any]:
    """The full measurement protocol against a freshly booted server.

    The server must start with an empty ``serve`` cache section for the
    cold numbers to mean anything (:func:`start_server` with a
    ``REPRO_CACHE_DIR`` pointing at a fresh directory).
    """
    # -- phase 1: dedup — N identical concurrent cold requests ------------
    before = client.metrics()
    dedup_body = {"workload": "AlexNet", "dims": [8, 16, 32]}
    barrier = threading.Barrier(fanout)
    failures: List[str] = []

    def one_request() -> None:
        worker = ServeClient(client.host, client.port, timeout=client.timeout)
        try:
            barrier.wait(timeout=30)
            worker.compute("dse", dedup_body)
        except Exception as exc:  # collected, asserted below
            failures.append(str(exc))
        finally:
            worker.close()

    threads = [threading.Thread(target=one_request) for _ in range(fanout)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise ExperimentError(
            f"dedup phase: {len(failures)} of {fanout} requests failed;"
            f" first: {failures[0]}"
        )
    after = client.metrics()

    def delta(name: str) -> float:
        return metric_total(after, name) - metric_total(before, name)

    dedup = {
        "fanout": fanout,
        "backend_computations": delta("serve.backend_computations"),
        "coalesced": delta("serve.coalesced"),
        "dedup_hit_rate": delta("serve.coalesced") / fanout,
    }

    # -- phase 2/3: cold vs warm throughput -------------------------------
    # Cold points are wide array-scale sweeps (32 dims each, offset per
    # workload so every key is distinct); warm replays the same points.
    points: List[Tuple[str, Dict[str, Any]]] = []
    for offset, workload in enumerate(
        ("VGG-11", "AlexNet", "HG", "FR", "LeNet-5", "PV")
    ):
        dims = [offset + 1 + 8 * step for step in range(32)]
        points.append(("dse", {"workload": workload, "dims": dims}))
    cold = _timed_phase(client, points)
    warm = _timed_phase(client, points * warm_rounds)
    if warm["sources"].get("cache", 0) != warm["requests"]:
        raise ExperimentError(
            f"warm phase was not fully cached: {warm['sources']}"
        )

    snapshot = client.metrics()
    return {
        "dedup": dedup,
        "cold": cold,
        "warm": warm,
        "warm_over_cold_throughput": (
            warm["rps"] / cold["rps"] if cold["rps"] > 0 else 0.0
        ),
        "responses_5xx": metric_total(snapshot, "serve.responses{code=500}"),
    }
