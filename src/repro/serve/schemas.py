"""Request schemas: validate JSON bodies, derive content-addressed keys.

A request names a network either by Table 1 workload name
(``{"workload": "LeNet-5"}``) or as an inline ``.net`` description
(``{"network": "network Tiny\\n..."}``).  The cache key hashes the
*resolved* network structure (via :func:`repro.cache.keys.network_payload`),
so the two spellings of the same network coalesce onto one computation
and one cache entry — the serve layer is content-addressed end to end.

Validation failures raise :class:`~repro.errors.SpecificationError` /
:class:`~repro.errors.ConfigurationError`, which the HTTP layer maps to
a 400 response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cache import hash_payload, network_payload
from repro.errors import ConfigurationError, SpecificationError
from repro.experiments.common import ARCH_ORDER
from repro.nn import WORKLOAD_NAMES, get_workload, parse_network
from repro.nn.network import Network

#: Request kinds the service computes (``sweep`` is a batch of these).
REQUEST_KINDS = ("map", "simulate", "dse", "dse_per_layer")

#: Kinds a client may safely retry after a 5xx: all served computations
#: are pure functions of their spec (no side effects beyond the cache),
#: so today every kind is retryable.  The chaos bench enforces "zero
#: unrecovered 5xx" for exactly this set; a future mutating kind would
#: opt out by not appearing here.
RETRYABLE_KINDS = frozenset(REQUEST_KINDS)

#: Guard rails on request size, so one malformed/abusive request cannot
#: monopolize the worker pool.
MAX_DIM = 256
MAX_DSE_DIMS = 32
MAX_SWEEP_POINTS = 1024
MAX_NETWORK_SOURCE = 64 * 1024
MAX_RECONFIG_SCALE = 1e6


@dataclass(frozen=True)
class ComputeRequest:
    """One validated computation: what to run, and its identity.

    ``spec`` is the picklable execution recipe a worker process replays
    (:func:`repro.serve.compute.execute_request`); ``key`` is the
    content-addressed identity used for coalescing and the persistent
    ``serve`` cache section.
    """

    kind: str
    spec: Dict[str, Any]
    key: str
    label: str


def _require_dict(body: Any) -> Dict[str, Any]:
    if not isinstance(body, dict):
        raise SpecificationError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def _resolve_network(body: Dict[str, Any]) -> Tuple[Network, Dict[str, Any]]:
    """The request's network plus the picklable spec that re-resolves it."""
    workload = body.get("workload")
    source = body.get("network")
    if (workload is None) == (source is None):
        raise SpecificationError(
            "exactly one of 'workload' (a Table 1 name) or 'network'"
            " (an inline .net description) is required"
        )
    if workload is not None:
        if workload not in WORKLOAD_NAMES:
            raise SpecificationError(
                f"unknown workload {workload!r};"
                f" known: {', '.join(WORKLOAD_NAMES)}"
            )
        return get_workload(workload), {"workload": workload}
    if not isinstance(source, str):
        raise SpecificationError("'network' must be a .net description string")
    if len(source) > MAX_NETWORK_SOURCE:
        raise SpecificationError(
            f"'network' description exceeds {MAX_NETWORK_SOURCE} bytes"
        )
    return parse_network(source), {"source": source}


def _parse_dim(body: Dict[str, Any], field: str = "dim", default: int = 16) -> int:
    raw = body.get(field, default)
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise SpecificationError(f"'{field}' must be an integer, got {raw!r}")
    if not 1 <= raw <= MAX_DIM:
        raise ConfigurationError(
            f"'{field}' must be in [1, {MAX_DIM}], got {raw}"
        )
    return raw


def _parse_dims(body: Dict[str, Any]) -> List[int]:
    raw = body.get("dims", [8, 16, 32, 64])
    if not isinstance(raw, list) or not raw:
        raise SpecificationError("'dims' must be a non-empty list of integers")
    if len(raw) > MAX_DSE_DIMS:
        raise ConfigurationError(
            f"'dims' is limited to {MAX_DSE_DIMS} entries, got {len(raw)}"
        )
    return [_parse_dim({"dims": d}, "dims") for d in raw]


def _parse_reconfig_scale(body: Dict[str, Any]) -> float:
    raw = body.get("reconfig_scale", 1.0)
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise SpecificationError(
            f"'reconfig_scale' must be a number, got {raw!r}"
        )
    if not 0 <= raw <= MAX_RECONFIG_SCALE:
        raise ConfigurationError(
            f"'reconfig_scale' must be in [0, {MAX_RECONFIG_SCALE}],"
            f" got {raw}"
        )
    return float(raw)


def parse_request(kind: str, body: Any) -> ComputeRequest:
    """Validate one JSON body into a keyed :class:`ComputeRequest`."""
    if kind not in REQUEST_KINDS:
        raise SpecificationError(
            f"unknown request kind {kind!r}; known: {', '.join(REQUEST_KINDS)}"
        )
    body = _require_dict(body)
    network, spec = _resolve_network(body)
    if kind == "map":
        dim = _parse_dim(body)
        spec = {**spec, "dim": dim}
        params: Dict[str, Any] = {
            "network": network_payload(network), "dim": dim,
        }
        label = f"map:{network.name}@{dim}"
    elif kind == "simulate":
        dim = _parse_dim(body)
        arch = body.get("arch", "flexflow")
        if arch not in ARCH_ORDER:
            raise SpecificationError(
                f"unknown arch {arch!r}; known: {', '.join(ARCH_ORDER)}"
            )
        spec = {**spec, "dim": dim, "arch": arch}
        params = {
            "network": network_payload(network), "dim": dim, "arch": arch,
        }
        label = f"simulate:{arch}:{network.name}@{dim}"
    elif kind == "dse_per_layer":
        dim = _parse_dim(body)
        scale = _parse_reconfig_scale(body)
        spec = {**spec, "dim": dim, "reconfig_scale": scale}
        params = {
            "network": network_payload(network),
            "dim": dim,
            "reconfig_scale": scale,
        }
        label = f"dse_per_layer:{network.name}@{dim}"
    else:  # dse
        dims = _parse_dims(body)
        spec = {**spec, "dims": dims}
        params = {"network": network_payload(network), "dims": dims}
        label = f"dse:{network.name}@{','.join(map(str, dims))}"
    return ComputeRequest(
        kind=kind,
        spec=spec,
        key=hash_payload(f"serve.{kind}", params),
        label=label,
    )


def parse_sweep(body: Any) -> List[ComputeRequest]:
    """A ``sweep`` body: ``{"points": [<simulate/map/dse bodies>...]}``.

    Each point may carry its own ``"kind"`` (default ``simulate``); the
    batch is sharded across the worker pool and every point coalesces
    and caches under its own key — so a sweep shares work with any
    concurrent single request for the same point.
    """
    body = _require_dict(body)
    points = body.get("points")
    if not isinstance(points, list) or not points:
        raise SpecificationError("'points' must be a non-empty list")
    if len(points) > MAX_SWEEP_POINTS:
        raise ConfigurationError(
            f"'points' is limited to {MAX_SWEEP_POINTS} entries,"
            f" got {len(points)}"
        )
    requests = []
    for index, point in enumerate(points):
        point = _require_dict(point)
        kind = point.get("kind", "simulate")
        try:
            requests.append(parse_request(kind, point))
        except (SpecificationError, ConfigurationError) as exc:
            raise type(exc)(f"points[{index}]: {exc}") from exc
    return requests
