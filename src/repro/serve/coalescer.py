"""Coalesce identical in-flight requests onto one backend computation.

The coalescer keeps a futures map keyed by the request's
content-addressed hash.  The first caller for a key becomes the
*leader*: it runs the computation and resolves the shared future.  Every
caller that arrives while the leader is still working becomes a *waiter*
attached to that future — N identical concurrent cold requests cost
exactly one computation, which is what makes the service safe to put in
front of heavy repeated traffic.

Counters (:data:`repro.obs.metrics.REGISTRY`):

* ``serve.coalesced{kind}`` — requests served by attaching to an
  in-flight leader (the dedup hit count);
* ``serve.inflight`` gauge — current distinct in-flight computations.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple

from repro.obs.metrics import REGISTRY


class Coalescer:
    """A futures map keyed by request hash, with waiters attached."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def get_or_compute(
        self,
        key: str,
        compute: Callable[[], Awaitable[Any]],
        *,
        kind: str = "",
    ) -> Tuple[Any, bool]:
        """``(result, was_coalesced)`` for one request.

        The leader's errors propagate to it *and* to every waiter —
        a failed computation fails the whole coalesced group (each
        caller may retry, becoming a fresh leader).  Cancelling a waiter
        never cancels the leader's computation.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            REGISTRY.counter("serve.coalesced", kind=kind).inc()
            return await asyncio.shield(existing), True

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        REGISTRY.gauge("serve.inflight").set(len(self._inflight))
        try:
            result = await compute()
        except BaseException as exc:
            if isinstance(exc, Exception):
                future.set_exception(exc)
                # Mark retrieved so a waiterless failure does not warn.
                future.exception()
            else:  # cancellation and the like: release waiters cleanly
                future.cancel()
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)
            REGISTRY.gauge("serve.inflight").set(len(self._inflight))
