"""Admission control, circuit breaking, and drain state for the server.

The worker pool (:mod:`repro.serve.pool`) makes a single request
resilient — retries, timeouts, crash/hang recovery.  This module makes
the *service* resilient: it bounds how much work the coordinator will
accept at once, stops hammering a backend that is failing repeatedly,
and sequences a clean shutdown.  Everything here is plain event-loop
state — no locks, no threads — because the HTTP layer drives it from a
single asyncio loop.

Three mechanisms, one facade (:class:`ServeResilience`):

* **admission control** — each request kind holds at most
  ``max_pending`` in-flight requests; one more gets a fast 503 +
  ``Retry-After`` (:class:`OverloadedError`) instead of a queue slot.
  Shed requests count into ``serve.shed{kind}`` and live pressure shows
  in the ``serve.pending{kind}`` gauge.
* **circuit breaker**, per request kind — ``breaker_threshold``
  *consecutive* failures open the circuit; while open, requests fail
  fast (:class:`CircuitOpenError`, 503 + ``Retry-After``) without
  touching the pool.  After ``breaker_reset_s`` the breaker goes
  half-open and admits exactly one probe; the probe's outcome closes or
  re-opens it.  Transitions emit tracer events and drive the
  ``serve.breaker_state{kind}`` gauge (0 closed / 1 half-open / 2 open)
  plus ``serve.breaker_transitions{kind,to}`` counters.
* **drain** — :meth:`ServeResilience.begin_drain` flips the service to
  *draining*: new requests get :class:`DrainingError` (503), `/healthz`
  turns ``draining``, and the app waits for pending work to finish
  before exiting (see ``ServeApp.drain``).

``/healthz`` is derived, never stored: ``draining`` wins, any open or
half-open breaker reports ``degraded`` with reasons, otherwise ``ok``.
Chaos-injection specs (:mod:`repro.chaos`) exercise every path here;
``docs/RESILIENCE.md`` documents the knobs and the state machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import ExperimentError
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import current_tracer

#: Breaker states, also the ``serve.breaker_state`` gauge encoding.
CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"
_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class OverloadedError(ExperimentError):
    """Admission control refused the request (pending budget exhausted)."""

    def __init__(self, kind: str, pending: int, budget: int,
                 retry_after_s: float):
        super().__init__(
            f"overloaded: {pending} pending {kind!r} requests"
            f" (budget {budget}); retry in {retry_after_s:.0f}s"
        )
        self.retry_after_s = retry_after_s


class CircuitOpenError(ExperimentError):
    """The breaker for this kind is open; the request failed fast."""

    def __init__(self, kind: str, retry_after_s: float):
        super().__init__(
            f"circuit open for {kind!r} requests after repeated failures;"
            f" retry in {retry_after_s:.0f}s"
        )
        self.retry_after_s = retry_after_s


class DrainingError(ExperimentError):
    """The service is shutting down and no longer accepts work."""

    def __init__(self):
        super().__init__("service is draining; no new requests accepted")
        self.retry_after_s = 1.0


@dataclass(frozen=True)
class ResiliencePolicy:
    """The service-level knobs (`repro serve --max-pending` etc.).

    ``max_pending`` defaults high enough that a full-size sweep
    (``MAX_SWEEP_POINTS`` = 1024 coalesced requests) is admitted; it
    exists to bound memory and queueing delay, not to rate-limit normal
    traffic.  ``grace_factor`` is forwarded to the worker pool's reaper.
    """

    max_pending: int = 1024
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    drain_timeout_s: float = 10.0
    grace_factor: float = 2.0

    def __post_init__(self):
        if self.max_pending < 1:
            raise ExperimentError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.breaker_threshold < 1:
            raise ExperimentError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ExperimentError(
                f"breaker_reset_s must be positive, got {self.breaker_reset_s}"
            )
        if self.drain_timeout_s <= 0:
            raise ExperimentError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )
        if self.grace_factor < 1.0:
            raise ExperimentError(
                f"grace_factor must be >= 1, got {self.grace_factor}"
            )


class CircuitBreaker:
    """Consecutive-failure breaker for one request kind.

    The clock is injectable so tests step through open -> half-open
    without sleeping.  ``acquire()`` gates an attempt; exactly one of
    ``record_success`` / ``record_failure`` / ``abort`` must follow.
    """

    def __init__(
        self,
        kind: str,
        *,
        threshold: int = 5,
        reset_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.kind = kind
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self.state = CLOSED
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._set_gauge()

    # -- state plumbing ------------------------------------------------------

    def _set_gauge(self) -> None:
        REGISTRY.gauge("serve.breaker_state", kind=self.kind).set(
            _STATE_GAUGE[self.state]
        )

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self._set_gauge()
        REGISTRY.counter(
            "serve.breaker_transitions", kind=self.kind, to=state
        ).inc()
        current_tracer().event(
            "breaker-transition", "serve",
            {"kind": self.kind, "to": state},
        )

    def retry_after_s(self) -> float:
        return max(0.0, self._opened_at + self.reset_s - self._clock())

    # -- the attempt protocol ------------------------------------------------

    def acquire(self) -> None:
        """Admit one attempt, or raise :class:`CircuitOpenError`."""
        if self.state == OPEN:
            if self._clock() - self._opened_at < self.reset_s:
                REGISTRY.counter(
                    "serve.breaker_rejections", kind=self.kind
                ).inc()
                raise CircuitOpenError(self.kind, self.retry_after_s())
            self._transition(HALF_OPEN)
            self._probing = False
        if self.state == HALF_OPEN:
            if self._probing:  # one probe at a time; the rest fail fast
                REGISTRY.counter(
                    "serve.breaker_rejections", kind=self.kind
                ).inc()
                raise CircuitOpenError(self.kind, self.retry_after_s())
            self._probing = True

    def record_success(self) -> None:
        self.failures = 0
        self._probing = False
        self._transition(CLOSED)

    def record_failure(self) -> None:
        self._probing = False
        if self.state == HALF_OPEN:  # failed probe: straight back open
            self._opened_at = self._clock()
            self._transition(OPEN)
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self._opened_at = self._clock()
            self._transition(OPEN)

    def abort(self) -> None:
        """The attempt never finished (cancelled client): no verdict."""
        self._probing = False


class ServeResilience:
    """Admission + breakers + drain state, one per :class:`ServeApp`."""

    def __init__(
        self,
        policy: ResiliencePolicy = ResiliencePolicy(),
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self._clock = clock
        self._pending: Dict[str, int] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.draining = False

    # -- admission -----------------------------------------------------------

    def pending(self, kind: str) -> int:
        return self._pending.get(kind, 0)

    def total_pending(self) -> int:
        return sum(self._pending.values())

    def enter(self, kind: str) -> None:
        """Admit one request, or raise a fast-failing 503 error."""
        if self.draining:
            raise DrainingError()
        count = self.pending(kind)
        if count >= self.policy.max_pending:
            REGISTRY.counter("serve.shed", kind=kind).inc()
            current_tracer().event("request-shed", "serve", {"kind": kind})
            raise OverloadedError(
                kind, count, self.policy.max_pending, retry_after_s=1.0
            )
        self._pending[kind] = count + 1
        REGISTRY.gauge("serve.pending", kind=kind).set(self._pending[kind])

    def exit(self, kind: str) -> None:
        count = max(0, self.pending(kind) - 1)
        self._pending[kind] = count
        REGISTRY.gauge("serve.pending", kind=kind).set(count)

    # -- breakers ------------------------------------------------------------

    def breaker(self, kind: str) -> CircuitBreaker:
        breaker = self._breakers.get(kind)
        if breaker is None:
            breaker = CircuitBreaker(
                kind,
                threshold=self.policy.breaker_threshold,
                reset_s=self.policy.breaker_reset_s,
                clock=self._clock,
            )
            self._breakers[kind] = breaker
        return breaker

    # -- drain ---------------------------------------------------------------

    def begin_drain(self) -> None:
        if not self.draining:
            self.draining = True
            REGISTRY.counter("serve.drains").inc()
            current_tracer().event("drain-begin", "serve")

    # -- health --------------------------------------------------------------

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """``(http_status, payload)`` for `/healthz`, derived on demand."""
        reasons: List[str] = []
        if self.draining:
            status, code = "draining", 503
            reasons.append("service is draining")
        else:
            status, code = "ok", 200
        breakers: Dict[str, str] = {}
        for kind, breaker in sorted(self._breakers.items()):
            breakers[kind] = breaker.state
            if breaker.state != CLOSED:
                if status == "ok":
                    status = "degraded"
                reasons.append(f"breaker {breaker.state} for {kind!r}")
        payload: Dict[str, Any] = {"status": status}
        if reasons:
            payload["reasons"] = reasons
        if breakers:
            payload["breakers"] = breakers
        pending = {k: v for k, v in sorted(self._pending.items()) if v}
        if pending:
            payload["pending"] = pending
        return code, payload
