"""The asyncio HTTP service: routing, coalescing, SSE progress, metrics.

Stdlib only: a deliberately small HTTP/1.1 server on ``asyncio`` streams
(keep-alive supported, bodies bounded, malformed input answered with
JSON errors).  Endpoints:

* ``POST /v1/map`` / ``/v1/simulate`` / ``/v1/dse`` — one computation;
  append ``?stream=1`` for a ``text/event-stream`` progress feed;
* ``POST /v1/sweep`` — a batch of points sharded across the worker pool;
* ``GET /metrics`` — the process :data:`~repro.obs.metrics.REGISTRY`
  snapshot as JSON;
* ``GET /healthz`` — liveness.

Request flow for a computation: validate → coalesce on the
content-addressed key (one leader, N waiters) → leader probes the
persistent ``serve`` cache section → on miss, compute in the worker pool
under the run policy → publish to the cache → resolve every waiter.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.cache import active_cache
from repro.errors import ConfigurationError, ReproError, SpecificationError
from repro.experiments.runner import RunPolicy
from repro.obs.metrics import REGISTRY
from repro.serve.coalescer import Coalescer
from repro.serve.pool import ProgressSink, WorkerPool, _noop_sink
from repro.serve.schemas import ComputeRequest, parse_request, parse_sweep

#: Input bounds: one request line, its headers, and its body.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADERS = 100
MAX_BODY = 2 * 1024 * 1024

#: Idle keep-alive connections are closed after this many seconds.
IDLE_TIMEOUT_S = 60.0

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """A malformed request that still deserves a well-formed response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeApp:
    """One service instance: coalescer + worker pool + HTTP handlers."""

    def __init__(
        self,
        policy: Optional[RunPolicy] = None,
        *,
        jobs: int = 2,
    ) -> None:
        self.coalescer = Coalescer()
        self.pool = WorkerPool(policy, jobs=jobs)

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        """Bind and return the listening server (port 0 = ephemeral)."""
        return await asyncio.start_server(self._handle_connection, host, port)

    def shutdown(self) -> None:
        self.pool.shutdown()

    # -- request flow --------------------------------------------------------

    async def serve_request(
        self,
        request: ComputeRequest,
        progress: Optional[ProgressSink] = None,
    ) -> Dict[str, Any]:
        """Compute (or coalesce, or cache-hit) one request to a response."""
        progress = progress or _noop_sink
        REGISTRY.counter("serve.requests", kind=request.kind).inc()

        async def leader() -> Dict[str, Any]:
            cache = active_cache()
            if cache is not None:
                stored = cache.get("serve", request.key)
                if stored is not None:
                    REGISTRY.counter("serve.results", source="cache").inc()
                    progress(
                        {"type": "event", "name": "cache-hit",
                         "category": "serve", "labels": {"key": request.key}}
                    )
                    return {"source": "cache", "result": stored, "spans": []}
            REGISTRY.counter(
                "serve.backend_computations", kind=request.kind
            ).inc()
            progress(
                {"type": "event", "name": "scheduled", "category": "serve",
                 "labels": {"label": request.label}}
            )
            envelope = await self.pool.run(request, progress)
            if cache is not None:
                cache.put("serve", request.key, envelope["result"])
            REGISTRY.counter("serve.results", source="computed").inc()
            return {"source": "computed", **envelope}

        payload, coalesced = await self.coalescer.get_or_compute(
            request.key, leader, kind=request.kind
        )
        response = {"kind": request.kind, "key": request.key, **payload}
        if coalesced:
            REGISTRY.counter("serve.results", source="coalesced").inc()
            response["source"] = "coalesced"
        return response

    async def _serve_sweep(self, body: Any) -> Dict[str, Any]:
        requests = parse_sweep(body)
        REGISTRY.counter("serve.requests", kind="sweep").inc()
        settled = await asyncio.gather(
            *(self.serve_request(req) for req in requests),
            return_exceptions=True,
        )
        points: List[Dict[str, Any]] = []
        errors = 0
        for req, outcome in zip(requests, settled):
            if isinstance(outcome, BaseException):
                errors += 1
                points.append(
                    {"kind": req.kind, "key": req.key, "error": str(outcome)}
                )
            else:
                outcome.pop("spans", None)  # batch responses stay compact
                points.append(outcome)
        return {"points": points, "errors": errors}

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader), timeout=IDLE_TIMEOUT_S
                    )
                except asyncio.TimeoutError:
                    break
                except _HttpError as exc:
                    await self._write_json(
                        writer, exc.status, {"error": str(exc)},
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break
                keep_alive = await self._respond(parsed, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, List[str]], Dict[str, str], bytes]]:
        """One parsed request, or ``None`` on a clean EOF between requests."""
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _HttpError(400, "truncated request line") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(400, "request line too long") from exc
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line {line!r}")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADERS + 1):
            raw = await reader.readuntil(b"\n")
            if raw in (b"\r\n", b"\n"):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header {raw!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0 or length > MAX_BODY:
            raise _HttpError(413, f"body exceeds {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = target.partition("?")
        return method, path, parse_qs(query_string), headers, body

    async def _respond(self, parsed, writer: asyncio.StreamWriter) -> bool:
        method, path, query, headers, body = parsed
        keep_alive = headers.get("connection", "").lower() != "close"
        try:
            if path == "/healthz":
                if method != "GET":
                    raise _HttpError(405, "use GET")
                await self._write_json(
                    writer, 200, {"status": "ok"}, keep_alive=keep_alive
                )
                return keep_alive
            if path == "/metrics":
                if method != "GET":
                    raise _HttpError(405, "use GET")
                await self._write_json(
                    writer, 200, {"metrics": REGISTRY.snapshot()},
                    keep_alive=keep_alive,
                )
                return keep_alive
            if path in ("/v1/map", "/v1/simulate", "/v1/dse"):
                if method != "POST":
                    raise _HttpError(405, "use POST")
                request = parse_request(
                    path.rsplit("/", 1)[1], self._decode_body(body)
                )
                if query.get("stream", ["0"])[-1] in ("1", "true"):
                    await self._respond_sse(writer, request)
                    return False  # SSE responses close the connection
                payload = await self.serve_request(request)
                await self._write_json(
                    writer, 200, payload, keep_alive=keep_alive
                )
                return keep_alive
            if path == "/v1/sweep":
                if method != "POST":
                    raise _HttpError(405, "use POST")
                payload = await self._serve_sweep(self._decode_body(body))
                await self._write_json(
                    writer, 200, payload, keep_alive=keep_alive
                )
                return keep_alive
            raise _HttpError(404, f"no route for {path}")
        except _HttpError as exc:
            await self._write_json(
                writer, exc.status, {"error": str(exc)}, keep_alive=keep_alive
            )
            return keep_alive
        except (SpecificationError, ConfigurationError) as exc:
            # Validation failures are the client's fault: 400.  Other
            # ReproErrors (e.g. an exhausted worker pool) fall through
            # to the 500 handler below — the request was well-formed.
            await self._write_json(
                writer, 400, {"error": str(exc)}, keep_alive=keep_alive
            )
            return keep_alive
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:  # a served bug must answer, not hang
            await self._write_json(
                writer, 500, {"error": f"internal error: {exc}"},
                keep_alive=False,
            )
            return False

    @staticmethod
    def _decode_body(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc

    @staticmethod
    async def _write_json(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        REGISTRY.counter("serve.responses", code=str(status)).inc()
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- SSE streaming -------------------------------------------------------

    async def _respond_sse(
        self, writer: asyncio.StreamWriter, request: ComputeRequest
    ) -> None:
        """Stream progress events, then the final result, then close."""
        REGISTRY.counter("serve.responses", code="200").inc()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        queue: asyncio.Queue = asyncio.Queue()
        task = asyncio.create_task(
            self.serve_request(request, queue.put_nowait)
        )
        try:
            while not task.done():
                getter = asyncio.create_task(queue.get())
                await asyncio.wait(
                    {getter, task}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter.done():
                    await self._write_sse(writer, "progress", getter.result())
                else:
                    getter.cancel()
            while not queue.empty():
                await self._write_sse(writer, "progress", queue.get_nowait())
            try:
                payload = task.result()
            except ReproError as exc:
                await self._write_sse(writer, "error", {"error": str(exc)})
                return
            except Exception as exc:
                await self._write_sse(
                    writer, "error", {"error": f"internal error: {exc}"}
                )
                return
            for span in payload.get("spans") or []:
                await self._write_sse(writer, "progress", span)
            await self._write_sse(writer, "result", payload)
        finally:
            if not task.done():
                task.cancel()

    @staticmethod
    async def _write_sse(
        writer: asyncio.StreamWriter, event: str, data: Dict[str, Any]
    ) -> None:
        writer.write(
            f"event: {event}\ndata: {json.dumps(data)}\n\n".encode("utf-8")
        )
        await writer.drain()


async def run_app(
    app: ServeApp, host: str, port: int, *, ready_message: bool = True
) -> None:
    """Bind, announce, and serve until cancelled (the CLI entry)."""
    server = await app.start(host, port)
    bound = server.sockets[0].getsockname()
    if ready_message:
        print(f"serving on http://{bound[0]}:{bound[1]}", flush=True)
    async with server:
        await server.serve_forever()
