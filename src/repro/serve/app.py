"""The asyncio HTTP service: routing, coalescing, SSE progress, metrics.

Stdlib only: a deliberately small HTTP/1.1 server on ``asyncio`` streams
(keep-alive supported, bodies bounded, malformed input answered with
JSON errors).  Endpoints:

* ``POST /v1/map`` / ``/v1/simulate`` / ``/v1/dse`` /
  ``/v1/dse_per_layer`` — one computation; append ``?stream=1`` for a
  ``text/event-stream`` progress feed;
* ``POST /v1/sweep`` — a batch of points sharded across the worker pool;
* ``GET /metrics`` — the process :data:`~repro.obs.metrics.REGISTRY`
  snapshot as JSON;
* ``GET /healthz`` — health state machine (``ok`` / ``degraded`` /
  ``draining``, with reasons), derived by the resilience layer;
* ``POST /drain`` — graceful shutdown: stop accepting, finish in-flight
  work within the drain deadline, flush metrics, exit (SIGTERM does the
  same).

Request flow for a computation: validate → admission control (shed with
a fast 503 + ``Retry-After`` when the pending budget for the kind is
exhausted, or while draining) → coalesce on the content-addressed key
(one leader, N waiters) → leader probes the persistent ``serve`` cache
section → on miss, pass the circuit breaker (open = fast 503) and
compute in the worker pool under the run policy → publish to the cache →
resolve every waiter.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.cache import active_cache
from repro.cache.memtier import payload_digest
from repro.errors import ConfigurationError, ReproError, SpecificationError
from repro.experiments.runner import RunPolicy
from repro.obs.events import event_record
from repro.obs.metrics import REGISTRY
from repro.serve.batcher import BatchPolicy, BatchScheduler
from repro.serve.coalescer import Coalescer
from repro.serve.pool import ProgressSink, WorkerPool, _noop_sink
from repro.serve.resilience import (
    CircuitOpenError,
    DrainingError,
    OverloadedError,
    ResiliencePolicy,
    ServeResilience,
)
from repro.serve.schemas import ComputeRequest, parse_request, parse_sweep

#: Input bounds: one request line, its headers, and its body.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADERS = 100
MAX_BODY = 2 * 1024 * 1024

#: Idle keep-alive connections are closed after this many seconds.
IDLE_TIMEOUT_S = 60.0

#: Hot-response entries retained (LRU): pre-encoded cache-hit response
#: bytes keyed by the raw request body, validated against the memory
#: tier's payload digest on every hit.
HOT_RESPONSES_MAX = 512

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    """A malformed request that still deserves a well-formed response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _swallow_outcome(task: "asyncio.Task") -> None:
    """Consume a detached task's result so nothing logs it as unretrieved."""
    if not task.cancelled():
        task.exception()


class ServeApp:
    """One service instance: coalescer + worker pool + HTTP handlers."""

    def __init__(
        self,
        policy: Optional[RunPolicy] = None,
        *,
        jobs: int = 2,
        resilience: Optional[ResiliencePolicy] = None,
        batching: Optional[BatchPolicy] = None,
    ) -> None:
        self.coalescer = Coalescer()
        self.resilience = ServeResilience(resilience or ResiliencePolicy())
        self.pool = WorkerPool(
            policy, jobs=jobs,
            grace_factor=self.resilience.policy.grace_factor,
        )
        self.batcher = BatchScheduler(
            batching or BatchPolicy(), self._dispatch
        )
        # Raw body bytes -> (kind, serve key, payload digest, response
        # body bytes): the warm fast path.  Event-loop-only access.
        self._hot_responses: "OrderedDict[Tuple[str, bytes], Tuple[str, str, bytes]]" = (
            OrderedDict()
        )
        self.drained = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        """Bind and return the listening server (port 0 = ephemeral)."""
        return await asyncio.start_server(self._handle_connection, host, port)

    def shutdown(self) -> None:
        self.pool.shutdown()

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; SIGTERM / ``POST /drain``).

        New requests are refused from this instant; a background task
        waits (up to ``drain_timeout_s``) for in-flight work, flushes a
        metrics summary, shuts the pool down, and sets :attr:`drained`,
        which :func:`run_app` watches to exit.
        """
        if self._drain_task is None:
            self.resilience.begin_drain()
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    async def _drain(self) -> None:
        policy = self.resilience.policy
        deadline = time.monotonic() + policy.drain_timeout_s
        while self.resilience.total_pending() and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        abandoned = self.resilience.total_pending()
        served = sum(
            value for name, value in REGISTRY.snapshot().items()
            if name.startswith("serve.responses")
            and isinstance(value, (int, float))
        )
        print(
            f"drain complete: {served} responses served,"
            f" {abandoned} request(s) abandoned at the deadline",
            file=sys.stderr,
        )
        self.pool.shutdown()
        self.drained.set()

    # -- request flow --------------------------------------------------------

    async def serve_request(
        self,
        request: ComputeRequest,
        progress: Optional[ProgressSink] = None,
    ) -> Dict[str, Any]:
        """Compute (or coalesce, or cache-hit) one request to a response."""
        progress = progress or _noop_sink
        REGISTRY.counter("serve.requests", kind=request.kind).inc()
        self.resilience.enter(request.kind)  # shed/draining raise here
        try:
            return await self._serve_admitted(request, progress)
        finally:
            self.resilience.exit(request.kind)

    async def _dispatch(
        self, request: ComputeRequest, progress: ProgressSink
    ) -> Dict[str, Any]:
        """One actual pool execution (singleton or fused batch).

        This is the only path that bumps ``serve.backend_computations``,
        so the counter measures real backend dispatches: N coalesced
        waiters count once, and K batched requests count once under
        ``kind="batch"``.
        """
        REGISTRY.counter(
            "serve.backend_computations", kind=request.kind
        ).inc()
        progress(
            event_record("scheduled", "serve", {"label": request.label})
        )
        return await self.pool.run(request, progress)

    async def _serve_admitted(
        self, request: ComputeRequest, progress: ProgressSink
    ) -> Dict[str, Any]:
        async def leader() -> Dict[str, Any]:
            cache = active_cache()
            if cache is not None:
                stored = cache.get("serve", request.key)
                if stored is not None:
                    REGISTRY.counter("serve.results", source="cache").inc()
                    progress(
                        event_record("cache-hit", "serve",
                                     {"key": request.key})
                    )
                    return {"source": "cache", "result": stored, "spans": []}
            # The breaker gates backend computations only — cache hits
            # stay served while a failing backend cools off.  Each
            # member of a fused batch passes (and scores) its own kind's
            # breaker, so batching never launders backend failures.
            breaker = self.resilience.breaker(request.kind)
            breaker.acquire()
            try:
                envelope = await self.batcher.submit(request, progress)
            except asyncio.CancelledError:
                breaker.abort()  # no verdict from a cancelled attempt
                raise
            except Exception:
                breaker.record_failure()
                raise
            breaker.record_success()
            if cache is not None:
                # Every point lands under its own content-addressed key
                # — batched or not — so future singletons still hit.
                # Deferred: the publish IO runs on the cache's flush
                # thread, not the event loop (the memory tier makes the
                # entry visible to this process immediately).
                with cache.deferred():
                    cache.put("serve", request.key, envelope["result"])
            REGISTRY.counter("serve.results", source="computed").inc()
            return {"source": "computed", **envelope}

        payload, coalesced = await self.coalescer.get_or_compute(
            request.key, leader, kind=request.kind
        )
        response = {"kind": request.kind, "key": request.key, **payload}
        if coalesced:
            REGISTRY.counter("serve.results", source="coalesced").inc()
            response["source"] = "coalesced"
        return response

    async def _serve_sweep(self, body: Any) -> Dict[str, Any]:
        requests = parse_sweep(body)
        REGISTRY.counter("serve.requests", kind="sweep").inc()
        settled = await asyncio.gather(
            *(self.serve_request(req) for req in requests),
            return_exceptions=True,
        )
        points: List[Dict[str, Any]] = []
        errors = 0
        for req, outcome in zip(requests, settled):
            if isinstance(outcome, BaseException):
                errors += 1
                points.append(
                    {"kind": req.kind, "key": req.key, "error": str(outcome)}
                )
            else:
                outcome.pop("spans", None)  # batch responses stay compact
                points.append(outcome)
        return {"points": points, "errors": errors}

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader), timeout=IDLE_TIMEOUT_S
                    )
                except asyncio.TimeoutError:
                    break
                except _HttpError as exc:
                    await self._write_json(
                        writer, exc.status, {"error": str(exc)},
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break
                keep_alive = await self._respond(parsed, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, List[str]], Dict[str, str], bytes]]:
        """One parsed request, or ``None`` on a clean EOF between requests."""
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _HttpError(400, "truncated request line") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(400, "request line too long") from exc
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line {line!r}")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADERS + 1):
            raw = await reader.readuntil(b"\n")
            if raw in (b"\r\n", b"\n"):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header {raw!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0 or length > MAX_BODY:
            raise _HttpError(413, f"body exceeds {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = target.partition("?")
        return method, path, parse_qs(query_string), headers, body

    async def _respond(self, parsed, writer: asyncio.StreamWriter) -> bool:
        method, path, query, headers, body = parsed
        keep_alive = headers.get("connection", "").lower() != "close"
        try:
            if path == "/healthz":
                if method != "GET":
                    raise _HttpError(405, "use GET")
                status, payload = self.resilience.health()
                await self._write_json(
                    writer, status, payload, keep_alive=keep_alive
                )
                return keep_alive
            if path == "/drain":
                if method != "POST":
                    raise _HttpError(405, "use POST")
                await self._write_json(
                    writer, 200, {"status": "draining"}, keep_alive=False
                )
                self.request_drain()  # after responding: the ack must land
                return False
            if path == "/metrics":
                if method != "GET":
                    raise _HttpError(405, "use GET")
                await self._write_json(
                    writer, 200, {"metrics": REGISTRY.snapshot()},
                    keep_alive=keep_alive,
                )
                return keep_alive
            if path in (
                "/v1/map", "/v1/simulate", "/v1/dse", "/v1/dse_per_layer"
            ):
                if method != "POST":
                    raise _HttpError(405, "use POST")
                kind = path.rsplit("/", 1)[1]
                streaming = query.get("stream", ["0"])[-1] in ("1", "true")
                if not streaming and await self._serve_hot(
                    kind, body, writer, keep_alive=keep_alive
                ):
                    return keep_alive
                request = parse_request(kind, self._decode_body(body))
                if streaming:
                    await self._respond_sse(writer, request)
                    return False  # SSE responses close the connection
                payload = await self.serve_request(request)
                encoded = json.dumps(payload).encode("utf-8")
                if payload.get("source") == "cache":
                    self._hot_store(kind, body, request.key, encoded)
                await self._write_raw(
                    writer, 200, encoded, keep_alive=keep_alive
                )
                return keep_alive
            if path == "/v1/sweep":
                if method != "POST":
                    raise _HttpError(405, "use POST")
                payload = await self._serve_sweep(self._decode_body(body))
                await self._write_json(
                    writer, 200, payload, keep_alive=keep_alive
                )
                return keep_alive
            raise _HttpError(404, f"no route for {path}")
        except _HttpError as exc:
            await self._write_json(
                writer, exc.status, {"error": str(exc)}, keep_alive=keep_alive
            )
            return keep_alive
        except (SpecificationError, ConfigurationError) as exc:
            # Validation failures are the client's fault: 400.  Other
            # ReproErrors (e.g. an exhausted worker pool) fall through
            # to the 500 handler below — the request was well-formed.
            await self._write_json(
                writer, 400, {"error": str(exc)}, keep_alive=keep_alive
            )
            return keep_alive
        except (OverloadedError, CircuitOpenError, DrainingError) as exc:
            # Deliberate fast failures: the service is protecting itself.
            # 503 + Retry-After tells a well-behaved client when to come
            # back; the connection stays usable.
            await self._write_json(
                writer, 503, {"error": str(exc)}, keep_alive=keep_alive,
                extra_headers={
                    "Retry-After": str(max(1, round(exc.retry_after_s)))
                },
            )
            return keep_alive
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:  # a served bug must answer, not hang
            await self._write_json(
                writer, 500, {"error": f"internal error: {exc}"},
                keep_alive=False,
            )
            return False

    # -- the hot response path -----------------------------------------------

    async def _serve_hot(
        self, kind: str, body: bytes, writer: asyncio.StreamWriter,
        *, keep_alive: bool,
    ) -> bool:
        """Replay a pre-encoded cache-hit response for a repeated body.

        The stored bytes were produced by a normal cache-hit response for
        this exact body, and are replayed only while the memory tier
        still holds the same payload (digest match) — a quarantined,
        evicted, or replaced cache entry silently falls back to the full
        path.  Skips body parsing, key hashing, coalescing, and response
        encoding: the sub-millisecond warm path.
        """
        hot_key = (kind, body)
        entry = self._hot_responses.get(hot_key)
        if entry is None:
            return False
        serve_key, digest, encoded = entry
        cache = active_cache()
        if cache is None or cache.mem.digest("serve", serve_key) != digest:
            self._hot_responses.pop(hot_key, None)
            return False
        self._hot_responses.move_to_end(hot_key)
        REGISTRY.counter("serve.requests", kind=kind).inc()
        self.resilience.enter(kind)  # draining/shed still refuse here
        try:
            REGISTRY.counter("serve.results", source="cache").inc()
            REGISTRY.counter("serve.hot_path", kind=kind).inc()
            await self._write_raw(writer, 200, encoded, keep_alive=keep_alive)
        finally:
            self.resilience.exit(kind)
        return True

    def _hot_store(
        self, kind: str, body: bytes, serve_key: str, encoded: bytes
    ) -> None:
        cache = active_cache()
        if cache is None:
            return
        digest = cache.mem.digest("serve", serve_key)
        if digest is None:
            return  # tier disabled (or entry already evicted): no hot path
        self._hot_responses[(kind, body)] = (serve_key, digest, encoded)
        while len(self._hot_responses) > HOT_RESPONSES_MAX:
            self._hot_responses.popitem(last=False)

    @staticmethod
    def _decode_body(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc

    @classmethod
    async def _write_json(
        cls,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        await cls._write_raw(
            writer, status, json.dumps(payload).encode("utf-8"),
            keep_alive=keep_alive, extra_headers=extra_headers,
        )

    @staticmethod
    async def _write_raw(
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        *,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        connection = "keep-alive" if keep_alive else "close"
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            f"Connection: {connection}\r\n\r\n"
        )
        REGISTRY.counter("serve.responses", code=str(status)).inc()
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- SSE streaming -------------------------------------------------------

    async def _respond_sse(
        self, writer: asyncio.StreamWriter, request: ComputeRequest
    ) -> None:
        """Stream progress events, then the final result, then close."""
        REGISTRY.counter("serve.responses", code="200").inc()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        queue: asyncio.Queue = asyncio.Queue()
        task = asyncio.create_task(
            self.serve_request(request, queue.put_nowait)
        )
        try:
            while not task.done():
                getter = asyncio.create_task(queue.get())
                await asyncio.wait(
                    {getter, task}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter.done():
                    await self._write_sse(writer, "progress", getter.result())
                else:
                    getter.cancel()
            while not queue.empty():
                await self._write_sse(writer, "progress", queue.get_nowait())
            try:
                payload = task.result()
            except ReproError as exc:
                await self._write_sse(writer, "error", {"error": str(exc)})
                return
            except Exception as exc:
                await self._write_sse(
                    writer, "error", {"error": f"internal error: {exc}"}
                )
                return
            for span in payload.get("spans") or []:
                await self._write_sse(writer, "progress", span)
            await self._write_sse(writer, "result", payload)
        finally:
            if not task.done():
                # The client went away (or this handler died) while the
                # computation is in flight.  Do NOT cancel it: the leader
                # may be feeding coalesced waiters, and its result still
                # warms the cache.  Detach and swallow the outcome.
                REGISTRY.counter("serve.stream_disconnects").inc()
                task.add_done_callback(_swallow_outcome)

    @staticmethod
    async def _write_sse(
        writer: asyncio.StreamWriter, event: str, data: Dict[str, Any]
    ) -> None:
        writer.write(
            f"event: {event}\ndata: {json.dumps(data)}\n\n".encode("utf-8")
        )
        await writer.drain()


async def run_app(
    app: ServeApp, host: str, port: int, *, ready_message: bool = True
) -> None:
    """Bind, announce, serve until cancelled or drained (the CLI entry).

    SIGTERM triggers the same graceful drain as ``POST /drain``: stop
    accepting, let in-flight work finish (bounded by the drain
    deadline), then return — so ``kill <pid>`` on a busy server loses no
    admitted request and exits 0.
    """
    server = await app.start(host, port)
    bound = server.sockets[0].getsockname()
    if ready_message:
        print(f"serving on http://{bound[0]}:{bound[1]}", flush=True)
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, app.request_drain)
        sigterm_installed = True
    except (NotImplementedError, RuntimeError):
        sigterm_installed = False  # non-Unix loops / nested loops
    try:
        async with server:
            serving = asyncio.ensure_future(server.serve_forever())
            drained = asyncio.ensure_future(app.drained.wait())
            done, pending = await asyncio.wait(
                {serving, drained}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            for task in pending:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            for task in done:  # surface serve_forever errors, if any
                if task is serving and not task.cancelled():
                    task.exception()
    finally:
        if sigterm_installed:
            loop.remove_signal_handler(signal.SIGTERM)
