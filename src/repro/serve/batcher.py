"""Cross-request dynamic batching: fuse compatible cold requests.

The :class:`~repro.serve.coalescer.Coalescer` collapses *identical*
in-flight requests; this scheduler generalizes it to *compatible* ones —
same kind and network (and arch), different dims/grid points, exactly
the axes :func:`repro.experiments.common.evaluate_sweep` and the batched
SoA engine consume in one shot.  A cold request that misses the cache
parks in a pending batch for up to ``window_ms``; requests arriving
inside the window join it, and when the window closes (or the batch
reaches ``max_batch`` members) the whole group ships to the worker pool
as ONE fused ``batch`` task.  The worker evaluates the union of the
members' points once and rebuilds every member's singleton payload
(:func:`repro.serve.compute._exec_batch`), which the scheduler fans back
to each waiter.  Each member's own serve-path leader then publishes its
point to the content-addressed cache individually, so future singleton
requests still hit.

Failure containment: the fused dispatch runs under the worker pool's
full retry/timeout policy, so a batch-leader crash (chaos
``worker_crash``) is usually retried invisibly.  If the fused dispatch
exhausts its attempts anyway, the scheduler *fails over* to per-member
singleton dispatches (``serve.batch_failovers``) — a poisoned or
unlucky batch degrades to the unbatched path instead of failing every
waiter.

Counters: ``serve.batches`` (fused dispatches), ``serve.batched{kind}``
(requests served via a fused dispatch), ``serve.batch_failovers``, plus
the ``serve.batch_size`` histogram.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.cache import hash_payload
from repro.obs.metrics import REGISTRY
from repro.serve.pool import ProgressSink
from repro.serve.schemas import ComputeRequest

#: Kinds whose requests can fuse: their specs differ only along axes one
#: ``evaluate_sweep`` call spans.  ``map``/``dse_per_layer`` run whole
#: per-network searches with no shared sweep axis, so they stay singleton.
BATCHABLE_KINDS = frozenset({"dse", "simulate"})

#: An app-level dispatch: one request through breakerless pool execution.
Dispatch = Callable[[ComputeRequest, ProgressSink], Awaitable[Dict[str, Any]]]


@dataclass(frozen=True)
class BatchPolicy:
    """Batching knobs (CLI: ``--batch-window-ms`` / ``--batch-max``)."""

    window_ms: float = 2.0
    max_batch: int = 16

    @property
    def enabled(self) -> bool:
        return self.window_ms > 0 and self.max_batch > 1


def compatibility_key(request: ComputeRequest) -> Tuple[Any, ...]:
    """The axis requests must share to fuse: kind + network (+ arch)."""
    spec = request.spec
    network = (
        ("workload", spec["workload"])
        if "workload" in spec
        else ("source", spec["source"])
    )
    if request.kind == "simulate":
        return ("simulate", network, spec["arch"])
    return (request.kind, network)


def fuse_requests(requests: List[ComputeRequest]) -> ComputeRequest:
    """One ``batch``-kind request carrying every member's spec."""
    first = requests[0]
    return ComputeRequest(
        kind="batch",
        spec={"kind": first.kind, "members": [r.spec for r in requests]},
        key=hash_payload(
            "serve.batch",
            {"kind": first.kind, "keys": [r.key for r in requests]},
        ),
        label=f"batch:{first.kind}x{len(requests)}",
    )


class _PendingBatch:
    """One open batch: members accumulate until sealed."""

    __slots__ = ("members", "sealed", "closed")

    def __init__(self) -> None:
        self.members: List[
            Tuple[ComputeRequest, ProgressSink, asyncio.Future]
        ] = []
        self.sealed = asyncio.Event()
        self.closed = False


class BatchScheduler:
    """Groups compatible cold requests into fused pool dispatches."""

    def __init__(self, policy: BatchPolicy, dispatch: Dispatch) -> None:
        self.policy = policy
        self._dispatch = dispatch
        self._pending: Dict[Tuple[Any, ...], _PendingBatch] = {}

    @property
    def pending(self) -> int:
        return sum(len(b.members) for b in self._pending.values())

    async def submit(
        self, request: ComputeRequest, progress: ProgressSink
    ) -> Dict[str, Any]:
        """One cache-missed request to its worker envelope.

        Batchable kinds park in a pending batch; everything else (and
        everything when batching is off) dispatches immediately.
        """
        if not self.policy.enabled or request.kind not in BATCHABLE_KINDS:
            return await self._dispatch(request, progress)
        key = compatibility_key(request)
        batch = self._pending.get(key)
        future = asyncio.get_running_loop().create_future()
        if batch is None or batch.closed:
            batch = _PendingBatch()
            self._pending[key] = batch
            batch.members.append((request, progress, future))
            # The batch's own detached task closes the window; every
            # member (including the first) just awaits its future.
            asyncio.get_running_loop().create_task(self._lead(key, batch))
        else:
            batch.members.append((request, progress, future))
            if len(batch.members) >= self.policy.max_batch:
                self._seal(key, batch)
        return await future

    # -- internals ------------------------------------------------------------

    def _seal(self, key: Tuple[Any, ...], batch: _PendingBatch) -> None:
        """Close the batch to new members (idempotent, loop-synchronous)."""
        if batch.closed:
            return
        batch.closed = True
        if self._pending.get(key) is batch:
            del self._pending[key]
        batch.sealed.set()

    async def _lead(self, key: Tuple[Any, ...], batch: _PendingBatch) -> None:
        try:
            await asyncio.wait_for(
                batch.sealed.wait(), timeout=self.policy.window_ms / 1000.0
            )
        except asyncio.TimeoutError:
            pass
        self._seal(key, batch)
        members = batch.members
        if len(members) == 1:
            # A batch of one is just a singleton: no fusion overhead,
            # no batch counters — the window cost was the only price.
            await self._settle_singleton(members[0])
            return
        fused = fuse_requests([request for request, _, _ in members])
        kind = members[0][0].kind
        REGISTRY.counter("serve.batches", kind=kind).inc()
        REGISTRY.counter("serve.batched", kind=kind).inc(len(members))
        REGISTRY.histogram("serve.batch_size").observe(len(members))

        def fanout(record: Dict[str, Any]) -> None:
            for _, sink, _ in members:
                sink(record)

        results: Optional[List[Any]] = None
        try:
            envelope = await self._dispatch(fused, fanout)
            candidate = (envelope.get("result") or {}).get("results")
            if isinstance(candidate, list) and len(candidate) == len(members):
                results = candidate
                # Every member would otherwise carry the whole fused
                # sweep's per-point spans; keep the sweep-level rollup
                # only so fan-out encoding stays O(members), not
                # O(members x union points).
                spans = [
                    span
                    for span in envelope.get("spans") or []
                    if span.get("category") == "sweep"
                ]
        except asyncio.CancelledError:
            for _, _, future in members:
                if not future.done():
                    future.cancel()
            raise
        except Exception:
            pass
        if results is None:
            # The fused dispatch already burned its retries (or answered
            # malformed); give every member its own unbatched attempt
            # rather than failing all of them together.
            REGISTRY.counter("serve.batch_failovers", kind=kind).inc()
            await asyncio.gather(
                *(self._settle_singleton(member) for member in members)
            )
            return
        for (request, _, future), result in zip(members, results):
            if not future.done():
                future.set_result({"result": result, "spans": spans})

    async def _settle_singleton(
        self, member: Tuple[ComputeRequest, ProgressSink, asyncio.Future]
    ) -> None:
        request, progress, future = member
        try:
            envelope = await self._dispatch(request, progress)
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # retrieved: the waiter may be gone
        else:
            if not future.done():
                future.set_result(envelope)
