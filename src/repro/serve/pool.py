"""Supervised async worker pool: spawn workers the coordinator can kill.

Cold requests run in ``spawn`` worker processes, so a crashing
computation cannot take down the coordinator and CPU-heavy searches do
not stall the accept loop.  The supervision policy is the resilient
runner's :class:`~repro.experiments.runner.RunPolicy` — the same
timeout / retries / capped-exponential-backoff knobs, but enforced
*asynchronously*: a timed-out attempt raises out of ``asyncio.wait_for``
and backoff is an ``await asyncio.sleep``, so one struggling request
never blocks the coordinator from serving others.

Unlike the ``ProcessPoolExecutor`` it replaces, this pool owns each
worker directly (one duplex pipe + one reader thread per worker), which
buys the two properties an executor cannot provide:

* **hung-worker reaping** — every dispatched task carries a deadline of
  ``timeout_s * grace_factor``; a worker still busy past it is killed
  (``SIGKILL`` — hung computations ignore polite signals) and replaced,
  so a wedged computation costs one worker-respawn, not a pool slot
  forever.  ``serve.worker_reaps`` / ``serve.worker_respawns`` count the
  churn, and a result arriving after its caller gave up is dropped and
  counted (``serve.late_results``), never delivered to the wrong caller;
* **crash self-healing** — a worker that dies mid-task (chaos
  ``worker_crash``, OOM kill) surfaces as a failed attempt for exactly
  the task it was running, the worker is respawned, and the retry runs
  on a live worker (``serve.worker_crashes``).

``jobs=0`` selects *inline* mode — daemon worker threads in the
coordinator process — used by tests and tiny deployments.  Threads
cannot be killed, so a reaped inline worker is *abandoned* (it stays a
daemon thread until its computation returns, and its late result is
discarded) while a fresh thread takes over the slot: a hung attempt no
longer wedges inline mode forever.

The ``serve.pool_workers`` gauge tracks live workers through every
transition: spawn, reap/respawn, and ``shutdown()`` (where it drops to
zero until the next ``run()`` recreates the pool).
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ExperimentError
from repro.experiments.runner import RunPolicy
from repro.obs.events import event_record
from repro.obs.metrics import REGISTRY
from repro.serve.compute import pool_entry
from repro.serve.schemas import ComputeRequest

#: A progress callback; receives serializable event dicts.
ProgressSink = Callable[[Dict[str, Any]], None]

#: How far past ``timeout_s`` a busy worker may run before the reaper
#: kills and replaces it (callers have long since timed out and retried).
DEFAULT_GRACE_FACTOR = 2.0


def _noop_sink(record: Dict[str, Any]) -> None:
    pass


def _spawn_worker_main(conn) -> None:
    """One spawn worker's loop: ``(task_id, kind, spec)`` in, reply out.

    Before serving, the worker eagerly loads the compiled kernel backend
    (numba/cext builds happen here, at pool start) so the first cold
    request does not pay the load, and reports how long it took via a
    ``warm`` message (the ``serve.worker_warm_ms`` gauge).
    """
    try:
        from repro.kernels import active_kernels

        started = time.perf_counter()
        active_kernels()
        conn.send((None, "warm", (time.perf_counter() - started) * 1000.0))
    except Exception:
        pass  # a worker that cannot warm still serves (numpy fallback)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, kind, spec = message
        try:
            reply = (task_id, "ok", pool_entry(kind, spec))
        except BaseException as exc:  # any failure must become a reply
            reply = (task_id, "error", str(exc) or exc.__class__.__name__)
        try:
            conn.send(reply)
        except (OSError, TypeError, ValueError):
            # An unserializable envelope must not kill the worker.
            try:
                conn.send((task_id, "error", "result not serializable"))
            except OSError:
                return


class _ProcessWorker:
    """One owned spawn process + the reader thread watching its pipe."""

    def __init__(self, worker_id: int, post) -> None:
        self.id = worker_id
        self.busy_task: Optional[int] = None
        self.deadline: Optional[float] = None
        self.retired = False
        ctx = multiprocessing.get_context("spawn")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_spawn_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        self.process.start()
        child_conn.close()
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(post,),
            daemon=True,
            name=f"repro-serve-reader-{worker_id}",
        )
        self._reader.start()

    def _read_loop(self, post) -> None:
        while True:
            try:
                payload = self._conn.recv()
            except (EOFError, OSError):
                break
            post(self, payload)
        try:  # the reader owns the coordinator end once the pipe is dead
            self._conn.close()
        except OSError:
            pass
        post(self, None)

    def submit(self, task_id: int, kind: str, spec: Dict[str, Any]) -> None:
        self._conn.send((task_id, kind, spec))

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()  # SIGKILL: hung computations ignore terminate
        # Reap the corpse off-loop; the reader thread exits on pipe EOF.
        threading.Thread(target=self.process.join, daemon=True).start()


class _ThreadWorker:
    """Inline-mode worker: a daemon thread that cannot be killed, only
    abandoned (marked retired; its eventual result is dropped as late)."""

    def __init__(self, worker_id: int, post) -> None:
        self.id = worker_id
        self.busy_task: Optional[int] = None
        self.deadline: Optional[float] = None
        self.retired = False
        self._post = post
        self._queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._loop,
            daemon=True,
            name=f"repro-serve-inline-{worker_id}",
        )
        self._thread.start()

    def _loop(self) -> None:
        try:
            # Same eager warm-up as a spawn worker; the kernel load is
            # process-memoized, so only the first inline worker pays it.
            from repro.kernels import active_kernels

            started = time.perf_counter()
            active_kernels()
            self._post(
                self, (None, "warm", (time.perf_counter() - started) * 1000.0)
            )
        except Exception:
            pass
        while True:
            message = self._queue.get()
            if message is None:
                return
            task_id, kind, spec = message
            try:
                # Module-global lookup on purpose: tests monkeypatch
                # ``repro.serve.pool.pool_entry``.
                reply = (task_id, "ok", pool_entry(kind, spec))
            except BaseException as exc:
                reply = (task_id, "error", str(exc) or exc.__class__.__name__)
            self._post(self, reply)
            if self.retired:
                return

    def submit(self, task_id: int, kind: str, spec: Dict[str, Any]) -> None:
        self._queue.put((task_id, kind, spec))

    def kill(self) -> None:
        self._queue.put(None)  # unblock if idle; a busy thread is abandoned


class WorkerPool:
    """Executes :class:`ComputeRequest`s under a :class:`RunPolicy`."""

    def __init__(
        self,
        policy: Optional[RunPolicy] = None,
        *,
        jobs: int = 2,
        grace_factor: float = DEFAULT_GRACE_FACTOR,
    ):
        if jobs < 0:
            raise ExperimentError(f"jobs must be >= 0, got {jobs}")
        if grace_factor < 1.0:
            raise ExperimentError(
                f"grace_factor must be >= 1, got {grace_factor}"
            )
        self.policy = policy or RunPolicy()
        self.jobs = jobs
        self.grace_factor = grace_factor
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._workers: List[Any] = []
        self._idle: Deque[Any] = deque()
        self._waiters: Deque[asyncio.Future] = deque()
        self._pending: Dict[int, asyncio.Future] = {}
        self._abandoned: Set[int] = set()
        self._task_ids = itertools.count(1)
        self._worker_ids = itertools.count(1)
        self._reaper_task: Optional[asyncio.Task] = None
        self._reaper_wakeup: Optional[asyncio.Event] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def _ensure_started(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is not None and (
            self._loop is not loop or self._loop.is_closed()
        ):
            # Bound to a dead or different loop (tests run each request
            # through a fresh ``asyncio.run``): recycle onto this one.
            self._teardown()
        if self._loop is None:
            self._loop = loop
            self._closed = False
            for _ in range(max(1, self.jobs) if self.jobs == 0 else self.jobs):
                self._add_worker()
            self._reaper_wakeup = asyncio.Event()
            self._reaper_task = loop.create_task(self._reap_loop())

    def _add_worker(self):
        worker_id = next(self._worker_ids)
        if self.jobs == 0:
            worker = _ThreadWorker(worker_id, self._post_message)
        else:
            worker = _ProcessWorker(worker_id, self._post_message)
        self._workers.append(worker)
        self._idle.append(worker)
        REGISTRY.gauge("serve.pool_workers").set(len(self._workers))
        self._grant_waiters()
        return worker

    def _teardown(self) -> None:
        for worker in list(self._workers):
            worker.retired = True
            worker.kill()
        self._workers.clear()
        self._idle.clear()
        for fut in list(self._pending.values()):
            if not fut.done():
                try:
                    fut.set_result(("crashed", "pool shut down"))
                except Exception:
                    pass  # future bound to an already-closed loop
        self._pending.clear()
        self._abandoned.clear()
        for fut in list(self._waiters):
            try:
                fut.cancel()
            except Exception:
                pass
        self._waiters.clear()
        if self._reaper_task is not None:
            try:
                self._reaper_task.cancel()
            except Exception:
                pass
            self._reaper_task = None
        self._reaper_wakeup = None
        self._loop = None
        REGISTRY.gauge("serve.pool_workers").set(0)

    def shutdown(self) -> None:
        """Kill every worker and drop to zero; the next run() recreates."""
        self._closed = True
        self._teardown()

    # -- worker checkout -----------------------------------------------------

    async def _acquire(self):
        while True:
            while self._idle:
                worker = self._idle.popleft()
                if not worker.retired:
                    return worker
            fut = self._loop.create_future()
            self._waiters.append(fut)
            try:
                worker = await fut
            except asyncio.CancelledError:
                if fut in self._waiters:
                    self._waiters.remove(fut)
                elif fut.done() and not fut.cancelled():
                    self._release(fut.result())  # granted but never used
                raise
            if not worker.retired:
                return worker

    def _release(self, worker) -> None:
        if worker.retired:
            return
        worker.busy_task = None
        worker.deadline = None
        self._idle.append(worker)
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._waiters and self._idle:
            fut = self._waiters.popleft()
            if not fut.done():
                fut.set_result(self._idle.popleft())

    # -- worker messages (reader threads -> event loop) ----------------------

    def _post_message(self, worker, payload) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._on_message, worker, payload)
        except RuntimeError:
            pass  # loop closed between the check and the call

    def _on_message(self, worker, payload) -> None:
        if payload is None:
            # Pipe EOF: the worker process died (crash, OOM, or our kill).
            if not worker.retired:
                REGISTRY.counter("serve.worker_crashes").inc()
                self._retire(worker, "pipe closed unexpectedly")
            return
        task_id, status, data = payload
        if status == "warm":
            # Pool-start kernel preload report.  The worker was never
            # checked out for this message, so do NOT release it — that
            # would enqueue an idle worker twice.
            REGISTRY.gauge("serve.worker_warm_ms").set(data)
            return
        fut = self._pending.pop(task_id, None)
        if fut is not None:
            if not fut.done():
                fut.set_result((status, data))
        elif task_id in self._abandoned:
            self._abandoned.discard(task_id)
            REGISTRY.counter("serve.late_results").inc()
        if not worker.retired:
            self._release(worker)

    def _retire(self, worker, reason: str) -> None:
        """Remove + kill one worker, failing its in-flight task; respawn."""
        if worker.retired:
            return
        worker.retired = True
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            self._idle.remove(worker)
        except ValueError:
            pass
        task_id = worker.busy_task
        if task_id is not None:
            if isinstance(worker, _ProcessWorker):
                # SIGKILL means no late reply can ever arrive; an
                # abandoned *thread* may still post one (counted late).
                self._abandoned.discard(task_id)
            fut = self._pending.pop(task_id, None)
            if fut is not None and not fut.done():
                fut.set_result(("crashed", reason))
        worker.kill()
        REGISTRY.gauge("serve.pool_workers").set(len(self._workers))
        if not self._closed and self._loop is not None:
            self._add_worker()
            REGISTRY.counter("serve.worker_respawns").inc()

    # -- the hung-worker reaper ----------------------------------------------

    async def _reap_loop(self) -> None:
        while True:
            self._reaper_wakeup.clear()
            deadlines = [
                worker.deadline
                for worker in self._workers
                if worker.deadline is not None
            ]
            if not deadlines:
                await self._reaper_wakeup.wait()
                continue
            wait_s = min(deadlines) - time.monotonic()
            if wait_s > 0:
                try:
                    await asyncio.wait_for(
                        self._reaper_wakeup.wait(), timeout=wait_s
                    )
                except asyncio.TimeoutError:
                    pass
                continue
            now = time.monotonic()
            grace_s = (self.policy.timeout_s or 0.0) * self.grace_factor
            for worker in list(self._workers):
                if worker.deadline is not None and worker.deadline <= now:
                    REGISTRY.counter("serve.worker_reaps").inc()
                    self._retire(
                        worker, f"hung for more than {grace_s:.1f}s, reaped"
                    )

    # -- execution -----------------------------------------------------------

    async def _attempt(self, request: ComputeRequest) -> Tuple[str, Any]:
        """One dispatch: checkout, submit, await the worker's reply.

        Returns ``(status, data)`` with status ``ok``/``error``/
        ``crashed`` — never raises for a worker-side failure, so the
        retry loop above stays in control.  Cancellation (the caller's
        ``wait_for`` timing out) abandons the in-flight task: the worker
        stays busy until its reply or its reaper deadline, whichever
        comes first.
        """
        worker = await self._acquire()
        task_id = next(self._task_ids)
        fut = self._loop.create_future()
        self._pending[task_id] = fut
        worker.busy_task = task_id
        if self.policy.timeout_s is not None:  # no timeout -> no reaping
            worker.deadline = (
                time.monotonic() + self.policy.timeout_s * self.grace_factor
            )
            self._reaper_wakeup.set()
        try:
            worker.submit(task_id, request.kind, request.spec)
        except (OSError, ValueError) as exc:
            self._pending.pop(task_id, None)
            REGISTRY.counter("serve.worker_crashes").inc()
            self._retire(worker, f"submit failed: {exc}")
            return ("crashed", f"submit failed: {exc}")
        try:
            return await fut
        except asyncio.CancelledError:
            if self._pending.pop(task_id, None) is not None:
                self._abandoned.add(task_id)
            raise

    async def run(
        self,
        request: ComputeRequest,
        progress: Optional[ProgressSink] = None,
    ) -> Dict[str, Any]:
        """One request through the pool: attempts, timeout, async backoff.

        Returns the worker envelope ``{"result": ..., "spans": [...]}``.
        Raises :class:`ExperimentError` when every attempt failed or
        timed out (the HTTP layer maps it to a 500).
        """
        progress = progress or _noop_sink
        self._ensure_started()
        errors = []
        for attempt in range(1, self.policy.retries + 2):
            REGISTRY.counter("serve.attempts", kind=request.kind).inc()
            progress(
                event_record(
                    "attempt", "serve",
                    {"attempt": str(attempt), "label": request.label},
                )
            )
            try:
                status, data = await asyncio.wait_for(
                    self._attempt(request), timeout=self.policy.timeout_s
                )
            except asyncio.TimeoutError:
                errors.append(
                    f"attempt {attempt}: [timeout] exceeded"
                    f" {self.policy.timeout_s}s wall clock"
                )
                REGISTRY.counter("serve.timeouts", kind=request.kind).inc()
            else:
                if status == "ok":
                    return data
                detail = (
                    data if status == "error"
                    else f"worker crashed/died ({data})"
                )
                errors.append(f"attempt {attempt}: [failed] {detail}")
                REGISTRY.counter("serve.failures", kind=request.kind).inc()
            if attempt <= self.policy.retries:
                delay = self.policy.retry_delay(attempt)
                REGISTRY.counter("serve.retries", kind=request.kind).inc()
                progress(
                    event_record(
                        "retry-scheduled", "serve",
                        {"delay_s": f"{delay:.3f}", "label": request.label},
                    )
                )
                await asyncio.sleep(delay)
        raise ExperimentError(
            f"{request.label} failed after {self.policy.retries + 1}"
            " attempt(s):\n" + "\n".join(errors)
        )
