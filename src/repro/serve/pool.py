"""Async worker pool: cold computations off the event loop, with policy.

Cold requests run in ``spawn`` worker processes (a
``ProcessPoolExecutor``), so a crashing computation cannot take down the
coordinator and CPU-heavy searches do not stall the accept loop.  The
supervision policy is the resilient runner's
:class:`~repro.experiments.runner.RunPolicy` — the same timeout /
retries / exponential-backoff knobs, but enforced *asynchronously*:
a timed-out attempt raises out of ``asyncio.wait_for`` and backoff is an
``await asyncio.sleep``, so one struggling request never blocks the
coordinator from serving others (the serve-side twin of the runner's
deadline-scheduled retries).

Two caveats worth knowing (see ``docs/SERVING.md``):

* a timed-out task cannot be forcibly killed inside a live executor —
  it keeps occupying its worker until it finishes; the timeout bounds
  the *caller's* wait, and retries go to a free worker;
* ``jobs=0`` selects *inline* mode — a single-thread executor in the
  coordinator process — used by tests and tiny deployments.  It is
  single-threaded on purpose: the ambient tracer slot is process-global.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

from repro.errors import ExperimentError
from repro.experiments.runner import RunPolicy
from repro.obs.metrics import REGISTRY
from repro.serve.compute import pool_entry
from repro.serve.schemas import ComputeRequest

#: A progress callback; receives serializable event dicts.
ProgressSink = Callable[[Dict[str, Any]], None]


def _noop_sink(record: Dict[str, Any]) -> None:
    pass


class WorkerPool:
    """Executes :class:`ComputeRequest`s under a :class:`RunPolicy`."""

    def __init__(self, policy: Optional[RunPolicy] = None, *, jobs: int = 2):
        if jobs < 0:
            raise ExperimentError(f"jobs must be >= 0, got {jobs}")
        self.policy = policy or RunPolicy()
        self.jobs = jobs
        self._executor: Optional[Executor] = None

    # -- lifecycle -----------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.jobs == 0:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-serve-inline"
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            REGISTRY.gauge("serve.pool_workers").set(max(1, self.jobs))
        return self._executor

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- execution -----------------------------------------------------------

    async def run(
        self,
        request: ComputeRequest,
        progress: Optional[ProgressSink] = None,
    ) -> Dict[str, Any]:
        """One request through the pool: attempts, timeout, async backoff.

        Returns the worker envelope ``{"result": ..., "spans": [...]}``.
        Raises :class:`ExperimentError` when every attempt failed or
        timed out (the HTTP layer maps it to a 500).
        """
        progress = progress or _noop_sink
        executor = self._ensure_executor()
        loop = asyncio.get_running_loop()
        errors = []
        for attempt in range(1, self.policy.retries + 2):
            REGISTRY.counter("serve.attempts", kind=request.kind).inc()
            progress(
                {"type": "event", "name": "attempt", "category": "serve",
                 "labels": {"attempt": str(attempt), "label": request.label}}
            )
            try:
                envelope = await asyncio.wait_for(
                    loop.run_in_executor(
                        executor, pool_entry, request.kind, request.spec
                    ),
                    timeout=self.policy.timeout_s,
                )
                return envelope
            except asyncio.TimeoutError:
                errors.append(
                    f"attempt {attempt}: [timeout] exceeded"
                    f" {self.policy.timeout_s}s wall clock"
                )
                REGISTRY.counter("serve.timeouts", kind=request.kind).inc()
            except Exception as exc:
                errors.append(f"attempt {attempt}: [failed] {exc}")
                REGISTRY.counter("serve.failures", kind=request.kind).inc()
            if attempt <= self.policy.retries:
                delay = self.policy.backoff_s * (2 ** (attempt - 1))
                REGISTRY.counter("serve.retries", kind=request.kind).inc()
                progress(
                    {"type": "event", "name": "retry-scheduled",
                     "category": "serve",
                     "labels": {"delay_s": f"{delay:.3f}",
                                "label": request.label}}
                )
                await asyncio.sleep(delay)
        raise ExperimentError(
            f"{request.label} failed after {self.policy.retries + 1}"
            " attempt(s):\n" + "\n".join(errors)
        )
