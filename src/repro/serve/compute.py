"""The pure computations behind the service endpoints.

:func:`execute_request` replays a validated request spec
(:class:`~repro.serve.schemas.ComputeRequest`) into a JSON-compatible
result dict.  It is a module-level function on purpose: the worker pool
ships ``(kind, spec)`` across the ``spawn`` boundary by name.  All the
heavy lifting reuses the library paths that already sit behind the
persistent result cache — ``map_network``, ``simulate_network``,
``evaluate_sweep`` — so a served computation and a CLI run populate and
hit the same store entries.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.arch.config import ArchConfig
from repro.chaos import chaos_worker_entry
from repro.errors import SpecificationError
from repro.nn import get_workload, parse_network
from repro.nn.network import Network
from repro.obs.events import condense_spans
from repro.obs.tracer import Tracer, tracing


def _network_from_spec(spec: Dict[str, Any]) -> Network:
    if "workload" in spec:
        return get_workload(spec["workload"])
    return parse_network(spec["source"])


def _exec_map(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.dataflow import map_network

    network = _network_from_spec(spec)
    dim = spec["dim"]
    mapping = map_network(network, dim)
    return {
        "workload": network.name,
        "dim": dim,
        "overall_utilization": mapping.overall_utilization,
        "total_cycles": mapping.total_cycles,
        "layers": [
            {
                "name": lm.layer.name,
                "factors": lm.factors.describe(),
                "utilization": lm.utilization.ut,
                "compute_cycles": lm.compute_cycles,
                "relayout_cycles": lm.relayout_cycles,
            }
            for lm in mapping.layers
        ],
    }


def _exec_simulate(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.accelerators import make_accelerator

    network = _network_from_spec(spec)
    dim, arch = spec["dim"], spec["arch"]
    config = ArchConfig().scaled_to(dim)
    accelerator = make_accelerator(arch, config, workload_name=network.name)
    result = accelerator.simulate_network(network)
    return {
        "workload": network.name,
        "arch": arch,
        "dim": dim,
        "utilization": result.overall_utilization,
        "total_cycles": result.total_cycles,
        "gops": result.gops,
        "power_mw": result.power_mw,
        "gops_per_watt": result.gops_per_watt,
        "energy_uj": result.energy_uj,
        "dram_accesses": result.dram_accesses,
    }


def _exec_dse(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.arch.area import area_report
    from repro.experiments.common import evaluate_sweep

    network = _network_from_spec(spec)
    dims = spec["dims"]
    base = ArchConfig()
    per_dim = [(dim, base.scaled_to(dim)) for dim in dims]
    results = evaluate_sweep(
        f"serve:{network.name}",
        [(dim, "flexflow", network, cfg) for dim, cfg in per_dim],
    )
    rows = []
    best_dim, best_density = None, -1.0
    for dim, cfg in per_dim:
        result = results[dim]
        area = area_report("flexflow", cfg).total_mm2
        density = result.gops / area
        rows.append(
            {
                "dim": dim,
                "utilization": result.overall_utilization,
                "gops": result.gops,
                "area_mm2": area,
                "gops_per_mm2": density,
            }
        )
        if density > best_density:
            best_dim, best_density = dim, density
    return {"workload": network.name, "rows": rows, "best_dim": best_dim}


def _exec_dse_per_layer(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.dse import plan_payload, solve_per_layer

    network = _network_from_spec(spec)
    plan = solve_per_layer(
        network, spec["dim"], reconfig_scale=spec["reconfig_scale"]
    )
    return plan_payload(plan)


_EXECUTORS = {
    "map": _exec_map,
    "simulate": _exec_simulate,
    "dse": _exec_dse,
    "dse_per_layer": _exec_dse_per_layer,
}


def execute_request(kind: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one validated request spec to its JSON-compatible result."""
    executor = _EXECUTORS.get(kind)
    if executor is None:
        raise SpecificationError(f"unknown request kind {kind!r}")
    return executor(spec)


def pool_entry(kind: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-pool entry: execute under a tracer, ship condensed spans.

    Runs in a ``spawn`` worker process (or the inline thread executor),
    where the process-global current-tracer slot is safe to occupy: each
    worker computes one request at a time.
    """
    # Chaos crashes/hangs fire here, exactly where a real computation
    # would die — after the task reached a worker, before any result.
    chaos_worker_entry()
    tracer = Tracer(enabled=True)
    with tracing(tracer):
        result = execute_request(kind, spec)
    return {"result": result, "spans": condense_spans(tracer)}
