"""The pure computations behind the service endpoints.

:func:`execute_request` replays a validated request spec
(:class:`~repro.serve.schemas.ComputeRequest`) into a JSON-compatible
result dict.  It is a module-level function on purpose: the worker pool
ships ``(kind, spec)`` across the ``spawn`` boundary by name.  All the
heavy lifting reuses the library paths that already sit behind the
persistent result cache — ``map_network``, ``simulate_network``,
``evaluate_sweep`` — so a served computation and a CLI run populate and
hit the same store entries.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.arch.config import ArchConfig
from repro.chaos import chaos_worker_entry
from repro.errors import SpecificationError
from repro.nn import get_workload, parse_network
from repro.nn.network import Network
from repro.obs.events import condense_spans
from repro.obs.tracer import Tracer, tracing


def _network_from_spec(spec: Dict[str, Any]) -> Network:
    if "workload" in spec:
        return get_workload(spec["workload"])
    return parse_network(spec["source"])


def _exec_map(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.dataflow import map_network

    network = _network_from_spec(spec)
    dim = spec["dim"]
    mapping = map_network(network, dim)
    return {
        "workload": network.name,
        "dim": dim,
        "overall_utilization": mapping.overall_utilization,
        "total_cycles": mapping.total_cycles,
        "layers": [
            {
                "name": lm.layer.name,
                "factors": lm.factors.describe(),
                "utilization": lm.utilization.ut,
                "compute_cycles": lm.compute_cycles,
                "relayout_cycles": lm.relayout_cycles,
            }
            for lm in mapping.layers
        ],
    }


def _simulate_payload(network: Network, arch: str, dim: int, result) -> Dict[str, Any]:
    """One simulate response body (shared by singleton and fused paths,
    so a batched per-point payload is byte-identical to a singleton's)."""
    return {
        "workload": network.name,
        "arch": arch,
        "dim": dim,
        "utilization": result.overall_utilization,
        "total_cycles": result.total_cycles,
        "gops": result.gops,
        "power_mw": result.power_mw,
        "gops_per_watt": result.gops_per_watt,
        "energy_uj": result.energy_uj,
        "dram_accesses": result.dram_accesses,
    }


def _exec_simulate(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.accelerators import make_accelerator

    network = _network_from_spec(spec)
    dim, arch = spec["dim"], spec["arch"]
    config = ArchConfig().scaled_to(dim)
    accelerator = make_accelerator(arch, config, workload_name=network.name)
    return _simulate_payload(network, arch, dim, accelerator.simulate_network(network))


def _dse_payload(network: Network, dims, results) -> Dict[str, Any]:
    """One dse response body from pre-evaluated per-dim results.

    The best-dim scan walks ``dims`` in request order with a strict
    ``>``, exactly like the pre-fusion code, so a request's payload does
    not depend on which other requests it was batched with.
    """
    from repro.arch.area import area_report

    base = ArchConfig()
    rows = []
    best_dim, best_density = None, -1.0
    for dim in dims:
        result = results[dim]
        area = area_report("flexflow", base.scaled_to(dim)).total_mm2
        density = result.gops / area
        rows.append(
            {
                "dim": dim,
                "utilization": result.overall_utilization,
                "gops": result.gops,
                "area_mm2": area,
                "gops_per_mm2": density,
            }
        )
        if density > best_density:
            best_dim, best_density = dim, density
    return {"workload": network.name, "rows": rows, "best_dim": best_dim}


def _dse_results(network: Network, dims) -> Dict[int, Any]:
    """Evaluate the distinct dims of a dse request set in one sweep."""
    from repro.experiments.common import evaluate_sweep

    base = ArchConfig()
    return evaluate_sweep(
        f"serve:{network.name}",
        [(dim, "flexflow", network, base.scaled_to(dim)) for dim in sorted(set(dims))],
    )


def _exec_dse(spec: Dict[str, Any]) -> Dict[str, Any]:
    network = _network_from_spec(spec)
    dims = spec["dims"]
    return _dse_payload(network, dims, _dse_results(network, dims))


def _exec_batch(spec: Dict[str, Any]) -> Dict[str, Any]:
    """One fused dispatch for N compatible requests (the dynamic batcher).

    ``spec`` carries the member kind plus every member's singleton spec;
    all members share one network (and arch, for simulate) and differ in
    dims/grid points — exactly the axes :func:`evaluate_sweep` takes in
    one shot.  The union of the members' points is evaluated once, then
    each member's payload is rebuilt through the same helpers the
    singleton executors use, so per-point payloads are byte-identical to
    what each request would have produced alone.
    """
    from repro.experiments.common import evaluate_sweep

    kind = spec["kind"]
    members = spec["members"]
    network = _network_from_spec(members[0])
    if kind == "dse":
        union = sorted({dim for member in members for dim in member["dims"]})
        results = _dse_results(network, union)
        payloads = [
            _dse_payload(network, member["dims"], results)
            for member in members
        ]
    elif kind == "simulate":
        arch = members[0]["arch"]
        base = ArchConfig()
        union = sorted({member["dim"] for member in members})
        results = evaluate_sweep(
            f"serve:{network.name}",
            [(dim, arch, network, base.scaled_to(dim)) for dim in union],
        )
        payloads = [
            _simulate_payload(network, arch, member["dim"], results[member["dim"]])
            for member in members
        ]
    else:
        raise SpecificationError(f"kind {kind!r} is not batchable")
    return {"results": payloads}


def _exec_dse_per_layer(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.dse import plan_payload, solve_per_layer

    network = _network_from_spec(spec)
    plan = solve_per_layer(
        network, spec["dim"], reconfig_scale=spec["reconfig_scale"]
    )
    return plan_payload(plan)


_EXECUTORS = {
    "map": _exec_map,
    "simulate": _exec_simulate,
    "dse": _exec_dse,
    "dse_per_layer": _exec_dse_per_layer,
    "batch": _exec_batch,
}


def execute_request(kind: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one validated request spec to its JSON-compatible result."""
    executor = _EXECUTORS.get(kind)
    if executor is None:
        raise SpecificationError(f"unknown request kind {kind!r}")
    return executor(spec)


def pool_entry(kind: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-pool entry: execute under a tracer, ship condensed spans.

    Runs in a ``spawn`` worker process (or the inline thread executor),
    where the process-global current-tracer slot is safe to occupy: each
    worker computes one request at a time.
    """
    # Chaos crashes/hangs fire here, exactly where a real computation
    # would die — after the task reached a worker, before any result.
    chaos_worker_entry()
    tracer = Tracer(enabled=True)
    with tracing(tracer):
        result = execute_request(kind, spec)
    return {"result": result, "spans": condense_spans(tracer)}
