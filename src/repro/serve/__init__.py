"""DSE-as-a-service: an asyncio HTTP front-end over the toolkit.

``repro serve`` exposes the mapper, the accelerator simulators, and the
array-scale DSE sweep behind a small stdlib-only HTTP API (see
``docs/SERVING.md``).  The moving parts:

* :mod:`repro.serve.schemas` — JSON request validation and the
  content-addressed request keys (the same SHA-256 scheme as
  :mod:`repro.cache.keys`, so a served request and a CLI run share
  cache entries);
* :mod:`repro.serve.compute` — the pure execution functions worker
  processes run;
* :mod:`repro.serve.coalescer` — dedup of identical in-flight requests
  onto a single backend computation;
* :mod:`repro.serve.pool` — a ``spawn`` worker pool supervised under the
  resilient runner's :class:`~repro.experiments.runner.RunPolicy`
  (timeout / retries / non-blocking backoff);
* :mod:`repro.serve.app` — the asyncio HTTP server: ``/v1/map``,
  ``/v1/simulate``, ``/v1/dse``, ``/v1/sweep``, ``/metrics``,
  ``/healthz``, and SSE progress streaming;
* :mod:`repro.serve.loadtest` — the client and load-test harness behind
  ``benchmarks/bench_serve.py`` and the committed ``serve`` numbers.
"""

from repro.serve.app import ServeApp
from repro.serve.coalescer import Coalescer
from repro.serve.pool import WorkerPool
from repro.serve.schemas import ComputeRequest, parse_request

__all__ = [
    "Coalescer",
    "ComputeRequest",
    "ServeApp",
    "WorkerPool",
    "parse_request",
]
