"""Data-movement metrics: transmission volume and DRAM accesses per op."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.accelerators.base import NetworkResult


def transmission_volume_words(result: NetworkResult) -> int:
    """Figure 17's metric: words crossing the on-chip-buffer boundary.

    The paper uses this volume as the inverse proxy for data reusability —
    an architecture that re-reads the same word many times moves more.
    """
    return result.buffer_traffic_words


def transmission_volume_kb(result: NetworkResult) -> float:
    word_bytes = result.config.technology.word_bytes
    return result.buffer_traffic_words * word_bytes / 1024.0


def dram_accesses_per_op(result: NetworkResult) -> float:
    """Table 7's DRAM Acc/Op metric."""
    return result.dram_accesses_per_op


def reuse_factor(result: NetworkResult) -> float:
    """MACs per buffer word moved — higher means better reuse."""
    words = result.buffer_traffic_words
    if words == 0:
        return float("inf")
    return result.total_macs / words


def volume_ratio_matrix(
    results: Mapping[str, NetworkResult], reference: str = "flexflow"
) -> Dict[str, float]:
    """How many times more data each architecture moves vs. ``reference``."""
    ref = results[reference].buffer_traffic_words
    return {
        kind: result.buffer_traffic_words / ref if ref else float("inf")
        for kind, result in results.items()
        if kind != reference
    }
