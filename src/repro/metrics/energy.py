"""Energy metrics: power efficiency, energy ratios (Figure 18)."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.accelerators.base import NetworkResult
from repro.errors import ConfigurationError


def power_efficiency_gops_per_watt(result: NetworkResult) -> float:
    """Figure 18(a): performance per watt."""
    return result.gops_per_watt


def energy_uj(result: NetworkResult) -> float:
    """Figure 18(b): chip energy to complete the workload's CONV layers."""
    return result.energy_uj


def power_mw(result: NetworkResult) -> float:
    """Figure 18(c): average chip power during the run."""
    return result.power_mw


def efficiency_ratio_matrix(
    results: Mapping[str, NetworkResult], reference: str = "flexflow"
) -> Dict[str, float]:
    """``reference``'s power-efficiency gain over each other architecture."""
    if reference not in results:
        raise ConfigurationError(f"reference {reference!r} not in results")
    ref = results[reference].gops_per_watt
    return {
        kind: ref / result.gops_per_watt if result.gops_per_watt else float("inf")
        for kind, result in results.items()
        if kind != reference
    }


def energy_per_mac_pj(result: NetworkResult) -> float:
    """Chip energy per multiply-accumulate — the efficiency primitive."""
    macs = result.total_macs
    if macs == 0:
        return 0.0
    return result.power_report().total_energy_pj / macs


def energy_delay_product(result: NetworkResult) -> float:
    """EDP in joule-seconds: energy x runtime.

    The combined figure of merit that penalizes trading performance for
    efficiency (or vice versa); FlexFlow's simultaneous wins on both make
    its EDP gap over the baselines larger than either individual gap.
    """
    energy_j = result.power_report().total_energy_pj * 1e-12
    return energy_j * result.runtime_s


def edp_ratio_matrix(
    results: Mapping[str, NetworkResult], reference: str = "flexflow"
) -> Dict[str, float]:
    """Each architecture's EDP relative to ``reference`` (higher = worse)."""
    if reference not in results:
        raise ConfigurationError(f"reference {reference!r} not in results")
    ref = energy_delay_product(results[reference])
    return {
        kind: energy_delay_product(result) / ref if ref else float("inf")
        for kind, result in results.items()
        if kind != reference
    }
