"""Scalability metrics: utilization / power / area vs. engine scale (Fig 19)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.accelerators import make_accelerator
from repro.arch.area import area_report
from repro.arch.config import ArchConfig
from repro.errors import ConfigurationError
from repro.nn.network import Network

#: The paper's Figure 19 sweep points.
DEFAULT_SCALES = (8, 16, 32, 64)


@dataclass(frozen=True)
class ScalePoint:
    """One (architecture, scale) measurement of the Figure 19 sweep."""

    kind: str
    array_dim: int
    utilization: float
    power_mw: float
    area_mm2: float
    gops: float


def scalability_sweep(
    network: Network,
    kinds: Sequence[str] = ("systolic", "mapping2d", "tiling", "flexflow"),
    scales: Sequence[int] = DEFAULT_SCALES,
    base_config: ArchConfig = None,
) -> List[ScalePoint]:
    """Run the network at each scale on each architecture.

    The paper uses AlexNet ("the most complicated in the benchmarks").
    Buffers scale linearly with ``D`` via :meth:`ArchConfig.scaled_to`.
    """
    if not scales:
        raise ConfigurationError("scales must be non-empty")
    base = base_config or ArchConfig()
    points: List[ScalePoint] = []
    for dim in scales:
        config = base.scaled_to(dim)
        # Audit note: every (kind, dim) point below is unique, and the two
        # expensive sub-computations are memoized on exactly the right
        # keys — ``map_network`` (inside FlexFlow's simulate_network) per
        # (network, array_dim, mask), and ``area_report`` per
        # (kind, config), which also covers the second lookup hidden in
        # each point's power computation — so nothing re-runs inside this
        # loop or across repeated sweeps.
        for kind in kinds:
            acc = make_accelerator(kind, config, workload_name=network.name)
            result = acc.simulate_network(network)
            points.append(
                ScalePoint(
                    kind=kind,
                    array_dim=dim,
                    utilization=result.overall_utilization,
                    power_mw=result.power_mw,
                    area_mm2=area_report(kind, config).total_mm2,
                    gops=result.gops,
                )
            )
    return points


def utilization_sensitivity(points: Sequence[ScalePoint], kind: str) -> float:
    """Utilization drop from the smallest to the largest scale.

    The paper's scalability criterion: "the computing resource utilization
    ratio of a scalable architecture should be insensitive to the scale".
    Lower is better; FlexFlow's should be near zero.
    """
    own = sorted(
        (p for p in points if p.kind == kind), key=lambda p: p.array_dim
    )
    if len(own) < 2:
        raise ConfigurationError(f"need at least two scales for {kind!r}")
    return own[0].utilization - own[-1].utilization
