"""Scalability metrics: utilization / power / area vs. engine scale (Fig 19)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch.area import area_report
from repro.arch.config import ArchConfig
from repro.errors import ConfigurationError
from repro.experiments.common import evaluate_sweep
from repro.nn.network import Network

#: The paper's Figure 19 sweep points.
DEFAULT_SCALES = (8, 16, 32, 64)


@dataclass(frozen=True)
class ScalePoint:
    """One (architecture, scale) measurement of the Figure 19 sweep."""

    kind: str
    array_dim: int
    utilization: float
    power_mw: float
    area_mm2: float
    gops: float


def scalability_sweep(
    network: Network,
    kinds: Sequence[str] = ("systolic", "mapping2d", "tiling", "flexflow"),
    scales: Sequence[int] = DEFAULT_SCALES,
    base_config: ArchConfig = None,
) -> List[ScalePoint]:
    """Run the network at each scale on each architecture.

    The paper uses AlexNet ("the most complicated in the benchmarks").
    Buffers scale linearly with ``D`` via :meth:`ArchConfig.scaled_to`.
    """
    if not scales:
        raise ConfigurationError("scales must be non-empty")
    base = base_config or ArchConfig()
    # The (kind x dim) grid is evaluated as one batched sweep.  Audit
    # note: every point is unique, and the two expensive
    # sub-computations are memoized on exactly the right keys —
    # ``map_network`` (inside FlexFlow's simulate_network, itself running
    # the vectorized candidate-scoring search) per (network, array_dim,
    # mask), and ``area_report`` per (kind, config), which also covers
    # the second lookup hidden in each point's power computation — so
    # nothing re-runs inside this sweep or across repeated sweeps.
    configs = {dim: base.scaled_to(dim) for dim in scales}
    results = evaluate_sweep(
        "fig19_scalability",
        [
            ((kind, dim), kind, network, configs[dim])
            for dim in scales
            for kind in kinds
        ],
    )
    points: List[ScalePoint] = []
    for dim in scales:
        for kind in kinds:
            result = results[(kind, dim)]
            points.append(
                ScalePoint(
                    kind=kind,
                    array_dim=dim,
                    utilization=result.overall_utilization,
                    power_mw=result.power_mw,
                    area_mm2=area_report(kind, configs[dim]).total_mm2,
                    gops=result.gops,
                )
            )
    return points


def utilization_sensitivity(points: Sequence[ScalePoint], kind: str) -> float:
    """Utilization drop from the smallest to the largest scale.

    The paper's scalability criterion: "the computing resource utilization
    ratio of a scalable architecture should be insensitive to the scale".
    Lower is better; FlexFlow's should be near zero.
    """
    own = sorted(
        (p for p in points if p.kind == kind), key=lambda p: p.array_dim
    )
    if len(own) < 2:
        raise ConfigurationError(f"need at least two scales for {kind!r}")
    return own[0].utilization - own[-1].utilization
