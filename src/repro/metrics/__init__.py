"""Evaluation metrics: performance, energy, traffic, scalability."""

from repro.metrics.energy import (
    edp_ratio_matrix,
    efficiency_ratio_matrix,
    energy_delay_product,
    energy_per_mac_pj,
    energy_uj,
    power_efficiency_gops_per_watt,
    power_mw,
)
from repro.metrics.performance import (
    achievable_fraction,
    nominal_gops,
    speedup_matrix,
)
from repro.metrics.roofline import (
    DEFAULT_BANDWIDTHS,
    RooflinePoint,
    bandwidth_sweep,
    required_bandwidth,
)
from repro.metrics.scalability import (
    DEFAULT_SCALES,
    ScalePoint,
    scalability_sweep,
    utilization_sensitivity,
)
from repro.metrics.traffic import (
    dram_accesses_per_op,
    reuse_factor,
    transmission_volume_kb,
    transmission_volume_words,
    volume_ratio_matrix,
)

__all__ = [
    "nominal_gops",
    "achievable_fraction",
    "speedup_matrix",
    "power_efficiency_gops_per_watt",
    "energy_uj",
    "power_mw",
    "efficiency_ratio_matrix",
    "energy_per_mac_pj",
    "energy_delay_product",
    "edp_ratio_matrix",
    "transmission_volume_words",
    "transmission_volume_kb",
    "dram_accesses_per_op",
    "reuse_factor",
    "volume_ratio_matrix",
    "DEFAULT_BANDWIDTHS",
    "RooflinePoint",
    "bandwidth_sweep",
    "required_bandwidth",
    "DEFAULT_SCALES",
    "ScalePoint",
    "scalability_sweep",
    "utilization_sensitivity",
]
