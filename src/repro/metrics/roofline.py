"""Bandwidth sensitivity: where compiled networks sit on the roofline.

The paper assumes sufficient external bandwidth; this analysis quantifies
how much is actually needed.  Each compiled program runs through the
:class:`~repro.compiler.executor.ProgramExecutor` across a sweep of DMA
bandwidths; the knee where total time stops being DMA-bound is the
workload's bandwidth requirement at the given engine scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.config import ArchConfig
from repro.compiler.codegen import compile_network
from repro.compiler.executor import ProgramExecutor
from repro.compiler.isa import Opcode
from repro.errors import ConfigurationError
from repro.experiments.common import sweep_span
from repro.nn.network import Network

#: Bandwidths swept, in 16-bit words per engine cycle (1 word/cycle at
#: 1 GHz = 2 GB/s).
DEFAULT_BANDWIDTHS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class RooflinePoint:
    """Execution at one bandwidth."""

    words_per_cycle: int
    total_cycles: int
    compute_cycles: int
    dma_cycles: int

    @property
    def dma_bound(self) -> bool:
        return self.dma_cycles > self.compute_cycles

    @property
    def efficiency(self) -> float:
        """Compute cycles / total cycles — 1.0 means DMA fully amortized."""
        if self.total_cycles == 0:
            return 0.0
        return self.compute_cycles / self.total_cycles


def bandwidth_sweep(
    network: Network,
    array_dim: int = 16,
    bandwidths: Sequence[int] = DEFAULT_BANDWIDTHS,
    config: Optional[ArchConfig] = None,
) -> List[RooflinePoint]:
    """Execute the compiled network across the bandwidth sweep.

    Only DMA instructions cost bandwidth-dependent cycles and the
    capacity checks are bandwidth-independent, so the program is walked
    *once* (at the first swept bandwidth, validating every instruction)
    and the remaining points are re-costed in one vectorized pass over
    the program's DMA word counts — exactly ``ceil(words / bw)`` per
    transfer, identical to a fresh executor run at each bandwidth.
    """
    if not bandwidths:
        raise ConfigurationError("bandwidths must be non-empty")
    for words in bandwidths:
        if words <= 0:
            raise ConfigurationError(
                f"dma_words_per_cycle must be positive, got {words}"
            )
    cfg = config or ArchConfig().scaled_to(array_dim)
    with sweep_span(
        "bandwidth_study", configs_evaluated=len(bandwidths)
    ) as span:
        program = compile_network(network, array_dim)
        report = ProgramExecutor(
            cfg, dma_words_per_cycle=bandwidths[0]
        ).execute(program)
        fixed_cycles = report.total_cycles - report.dma_cycles
        dma_word_counts = np.array(
            [
                instr.operands[0]
                for instr in program.instructions
                if instr.opcode in (Opcode.LDN, Opcode.LDK, Opcode.WB)
            ],
            dtype=np.int64,
        )
        bws = np.asarray(bandwidths, dtype=np.int64)
        if dma_word_counts.size:
            dma_totals = (-(-dma_word_counts[None, :] // bws[:, None])).sum(
                axis=1
            )
        else:
            dma_totals = np.zeros(len(bws), dtype=np.int64)
        span.add_counters({"dma_instructions": int(dma_word_counts.size)})
    return [
        RooflinePoint(
            words_per_cycle=int(bw),
            total_cycles=int(fixed_cycles + dma),
            compute_cycles=report.compute_cycles,
            dma_cycles=int(dma),
        )
        for bw, dma in zip(bandwidths, dma_totals)
    ]


def required_bandwidth(points: Sequence[RooflinePoint], threshold: float = 0.9) -> int:
    """Smallest swept bandwidth reaching the efficiency threshold.

    Returns the largest swept bandwidth if none reaches it (the caller
    should widen the sweep).
    """
    if not points:
        raise ConfigurationError("points must be non-empty")
    for point in sorted(points, key=lambda p: p.words_per_cycle):
        if point.efficiency >= threshold:
            return point.words_per_cycle
    return max(points, key=lambda p: p.words_per_cycle).words_per_cycle
