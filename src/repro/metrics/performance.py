"""Performance metrics: GOPS, nominal-vs-achievable, speedup matrices."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.accelerators.base import NetworkResult
from repro.errors import ConfigurationError


def nominal_gops(num_pes: int, frequency_hz: float) -> float:
    """Peak throughput: 2 ops per PE per cycle (the Figure 1/16 ceiling)."""
    if num_pes <= 0 or frequency_hz <= 0:
        raise ConfigurationError("num_pes and frequency must be positive")
    return 2.0 * num_pes * frequency_hz / 1e9


def achievable_fraction(result: NetworkResult) -> float:
    """Achieved / nominal performance — the Figure 1 metric.

    For architectures whose physical PE count differs from the shared
    budget (Systolic's 7 x 36 = 252), the nominal is still the shared
    256-PE budget, matching the paper's equal-scale comparison.
    """
    nominal = nominal_gops(
        result.config.num_pes, result.config.technology.frequency_hz
    )
    return result.gops / nominal


def speedup_matrix(
    results: Mapping[str, NetworkResult], reference: str = "flexflow"
) -> Dict[str, float]:
    """``reference`` architecture's speedup over each other architecture."""
    if reference not in results:
        raise ConfigurationError(f"reference {reference!r} not in results")
    ref_gops = results[reference].gops
    return {
        kind: ref_gops / result.gops if result.gops else float("inf")
        for kind, result in results.items()
        if kind != reference
    }
