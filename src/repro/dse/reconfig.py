"""The reconfiguration-cost model for per-layer dataflow switching.

Charged at a layer boundary whenever the configuration entering the next
layer differs from the one that just ran:

* **family switch** — the fabric changes engine family (e.g. FlexFlow ->
  Pipelined-Systolic).  Every PE's datapath mode and interconnect select
  must be rewritten: a configuration burst proportional to the array,
  modeled as ``4 * D`` cycles (the Section 5 configuration ISA streams
  one row of CFG words per cycle over four distribution trees), plus the
  inter-layer buffer re-layout the mapper already prices for a coupling
  break — ``2 * ceil(input_words / D)`` cycles
  (:func:`repro.dataflow.mapper.relayout_penalty_cycles`).
* **parameter switch** — same family, different parameters (a systolic
  ``Ta`` change, a 2D-Mapping block resize, a Tiling ``<Tm,Tn>``
  re-split).  Only the group/select registers are rewritten: ``D``
  cycles plus the same re-layout term.
* FlexFlow-to-FlexFlow transitions keep the mapper's own pricing
  untouched (coupled = free, coupling break = re-layout penalty alone):
  that cost is part of the paper's dataflow model, *not* of the
  reconfiguration model, which keeps the pure-FlexFlow path of the DP
  bit-identical to :func:`repro.dataflow.mapper.map_network` at any
  ``scale``.

``scale`` multiplies the cycle charges (``0`` models free switching, the
upper bound on what reconfigurability can win; larger values model
slower configuration fabrics) and is applied as ``int(round(scale *
base))`` so the DP stays in exact integer arithmetic.

Energy is reported, not optimized: a family switch writes ``2 * D^2``
configuration registers (mode + select per PE), a parameter switch
``2 * D``, each at the technology's register-access energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.technology import TechnologyModel
from repro.dataflow.mapper import relayout_penalty_cycles
from repro.errors import ConfigurationError
from repro.nn.layers import ConvLayer

#: Configuration registers written per PE on a family switch (datapath
#: mode + interconnect select) and per array row on a parameter switch.
CONFIG_WORDS_PER_PE = 2


@dataclass(frozen=True)
class ReconfigCostModel:
    """Cycle/energy charges for between-layer reconfiguration.

    Args:
        array_dim: PE array dimension ``D``.
        scale: multiplier on the cycle charges (``>= 0``).
    """

    array_dim: int
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.array_dim <= 0:
            raise ConfigurationError(
                f"array_dim must be positive, got {self.array_dim}"
            )
        if not self.scale >= 0:
            raise ConfigurationError(
                f"reconfiguration scale must be >= 0, got {self.scale!r}"
            )

    def _scaled(self, base: int) -> int:
        return int(round(self.scale * base))

    def family_switch_cycles(self, layer: ConvLayer) -> int:
        """Entering ``layer`` under a different engine family."""
        return self._scaled(
            4 * self.array_dim
            + relayout_penalty_cycles(layer, self.array_dim)
        )

    def param_switch_cycles(self, layer: ConvLayer) -> int:
        """Entering ``layer`` under the same family, new parameters."""
        return self._scaled(
            self.array_dim + relayout_penalty_cycles(layer, self.array_dim)
        )

    def switch_cycles(self, kind: str, layer: ConvLayer) -> int:
        """Dispatch on the reconfiguration kind recorded in a plan."""
        if kind == "family":
            return self.family_switch_cycles(layer)
        if kind == "param":
            return self.param_switch_cycles(layer)
        if kind in ("", "relayout"):
            return 0  # priced by the mapper's own relayout term
        raise ConfigurationError(f"unknown reconfiguration kind {kind!r}")

    def switch_energy_pj(self, kind: str, technology: TechnologyModel) -> float:
        """Configuration-write energy of one switch (reported, not optimized)."""
        if kind == "family":
            words = CONFIG_WORDS_PER_PE * self.array_dim * self.array_dim
        elif kind == "param":
            words = CONFIG_WORDS_PER_PE * self.array_dim
        elif kind in ("", "relayout"):
            return 0.0
        else:
            raise ConfigurationError(f"unknown reconfiguration kind {kind!r}")
        return self.scale * words * technology.register_access_energy_pj
