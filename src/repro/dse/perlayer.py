"""Per-layer engine-family and dataflow selection as one exact DP.

Extends the mapper's Pareto-pruned coupling DP
(:mod:`repro.dataflow.mapper`) with *extern* states — one per (rigid
engine family, dataflow parameterization) pair — so every CONV layer
independently picks FlexFlow unrolling factors **or** a rigid dataflow,
with the reconfiguration-cost model (:mod:`repro.dse.reconfig`) charged
at every boundary where the configuration changes.

State space per layer:

* **FlexFlow states** — the mapper's output triples ``<Tm,Tr,Tc>``,
  with the existing coupled / break-coupling transitions priced exactly
  as :func:`~repro.dataflow.mapper.map_network` prices them.
* **Extern states** — ``(family, params)`` over a small deterministic
  grid: systolic / pipelined-systolic array sizes ``Ta`` drawn from the
  network's kernel sizes (plus the paper's 6 and 11 where they fit),
  2D-Mapping block sizes from the output-map sizes, and Tiling
  ``<Tm,Tn>`` splits of the PE budget.

Transitions: staying in the same extern configuration is free; a
parameter change costs ``param_switch``; crossing families (in either
direction, including to/from FlexFlow) costs ``family_switch``.

The mapper's pruning argument survives the extension unchanged: every
new option entering a FlexFlow candidate is of the form
``a + b * fout`` with shared ``a, b > 0``, and every option *leaving* a
FlexFlow state depends on it only through its cost — so per-bucket
minimum-``fout`` pruning and the last layer's single-survivor collapse
stay exact.  The batched engine therefore reuses
:func:`~repro.dataflow.mapper._pruned_layer_outs` wholesale and scores
extern states through a vectorized structure-of-arrays cycle matrix;
the scalar fallback (``REPRO_BATCHED_MAPPER=off``) enumerates full
candidate sets in pure Python.  Both are bit-identical, pinned by
``tests/dse/test_perlayer.py``.

Restricted to FlexFlow states only, the DP *is* the mapper's DP — so a
solved plan never exceeds any fixed-dataflow total, which the solver
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.mapping2d import mapping2d_layer_cycles
from repro.accelerators.pipeline import pipeline_layer_cycles
from repro.accelerators.systolic import systolic_layer_cycles
from repro.accelerators.tiling import tiling_layer_cycles
from repro.arch.technology import TechnologyModel
from repro.dataflow.mapper import (
    _best_input_batched,
    _input_steps,
    _output_steps,
    _pruned_layer_outs,
    _steps_array,
    _usable_limits,
    batched_mapper_enabled,
    coupled_input_triple,
    input_candidates,
    map_network,
    output_candidates,
    relayout_penalty_cycles,
)
from repro.dataflow.unrolling import ceil_div
from repro.dse.reconfig import ReconfigCostModel
from repro.errors import ConfigurationError, MappingError
from repro.nn.layers import ConvLayer
from repro.nn.network import Network
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import current_tracer
from repro.sim.batch import cdiv_array

Triple = Tuple[int, int, int]

#: Rigid engine families the DP can switch to, in deterministic
#: tie-break order; FlexFlow always precedes them.
EXTERN_FAMILIES = ("systolic", "pipeline", "mapping2d", "tiling")
FAMILY_ORDER = ("flexflow",) + EXTERN_FAMILIES


@dataclass(frozen=True)
class ExternState:
    """One rigid-dataflow configuration the fabric can switch into."""

    family: str
    params: Tuple[int, ...]

    @property
    def label(self) -> str:
        if self.family in ("systolic", "pipeline"):
            return f"Ta={self.params[0]}"
        if self.family == "mapping2d":
            return f"B={self.params[0]}"
        if self.family == "tiling":
            return f"Tm={self.params[0]},Tn={self.params[1]}"
        raise ConfigurationError(f"unknown extern family {self.family!r}")


def family_param_states(
    layers: Sequence[ConvLayer], array_dim: int
) -> Tuple[ExternState, ...]:
    """The deterministic extern-state grid for a set of CONV layers.

    Small by construction (a handful of parameterizations per family):
    the DP is exact over this grid, and the grid covers the values the
    paper's baselines actually use — kernel-matched and paper-sized
    ``Ta``, output-matched block sizes, and PE-budget-preserving tile
    splits.
    """
    kernels = {layer.kernel for layer in layers}
    ta_grid = sorted(
        {min(k, array_dim) for k in kernels}
        | {t for t in (6, 11) if t <= array_dim}
    )
    block_grid = sorted(
        {array_dim} | {min(layer.out_size, array_dim) for layer in layers}
    )
    tile_grid: List[Tuple[int, int]] = [(array_dim, array_dim)]
    half = array_dim // 2
    if half >= 1:
        tile_grid += [(2 * array_dim, half), (half, 2 * array_dim)]
    states: List[ExternState] = []
    states += [ExternState("systolic", (ta,)) for ta in ta_grid]
    states += [ExternState("pipeline", (ta,)) for ta in ta_grid]
    states += [ExternState("mapping2d", (b,)) for b in block_grid]
    states += [ExternState("tiling", pair) for pair in tile_grid]
    return tuple(states)


def extern_layer_cycles(
    state: ExternState, layer: ConvLayer, num_pes: int
) -> int:
    """One layer's cycles under one extern configuration (healthy array).

    Dispatches to the accelerator modules' closed forms, so the DP and
    ``make_accelerator(kind).simulate_layer`` cannot drift.
    """
    if state.family == "systolic":
        return systolic_layer_cycles(layer, state.params[0], num_pes)
    if state.family == "pipeline":
        return pipeline_layer_cycles(layer, state.params[0], num_pes)
    if state.family == "mapping2d":
        return mapping2d_layer_cycles(layer, state.params[0])
    if state.family == "tiling":
        return tiling_layer_cycles(layer, state.params[0], state.params[1])
    raise ConfigurationError(f"unknown extern family {state.family!r}")


def _extern_cycle_rows(
    states: Sequence[ExternState],
    layers: Sequence[ConvLayer],
    num_pes: int,
) -> List[List[int]]:
    """Scalar scoring: one Python closed-form call per (state, layer)."""
    return [
        [extern_layer_cycles(state, layer, num_pes) for layer in layers]
        for state in states
    ]


def _extern_cycle_matrix(
    states: Sequence[ExternState],
    layers: Sequence[ConvLayer],
    num_pes: int,
) -> List[List[int]]:
    """Batched scoring: vectorized closed forms over layer SoA columns.

    Same integer arithmetic as :func:`_extern_cycle_rows` evaluated as
    int64 array expressions — bit-identical values (pinned by the parity
    suite), one numpy pass per state instead of one call per cell.
    """
    m = np.array([layer.out_maps for layer in layers], dtype=np.int64)
    n = np.array([layer.in_maps for layer in layers], dtype=np.int64)
    s = np.array([layer.out_size for layer in layers], dtype=np.int64)
    k = np.array([layer.kernel for layer in layers], dtype=np.int64)
    w = np.array([layer.in_size for layer in layers], dtype=np.int64)
    rows: List[List[int]] = []
    for state in states:
        if state.family in ("systolic", "pipeline"):
            ta = state.params[0]
            arrays = max(1, num_pes // (ta * ta))
            passes = cdiv_array(k, np.int64(ta)) ** 2
            fill = w * np.minimum(k, ta)
            rounds = cdiv_array(m * n, np.int64(arrays))
            if state.family == "systolic":
                cycles = rounds * passes * (s * s + fill)
            else:
                cycles = rounds * passes * s * s + fill
        elif state.family == "mapping2d":
            block = state.params[0]
            blocks = cdiv_array(s, np.int64(block)) ** 2
            cycles = m * blocks * (n * k * k + block)
        else:  # tiling
            tm, tn = state.params
            cycles = (
                cdiv_array(m, np.int64(tm))
                * cdiv_array(n, np.int64(tn))
                * s * s * k * k
            )
        rows.append(cycles.tolist())
    return rows


# -- plan datamodel -----------------------------------------------------------


@dataclass(frozen=True)
class LayerChoice:
    """One layer's selected engine configuration in a per-layer plan."""

    layer: ConvLayer
    family: str
    params: Tuple[int, ...]
    in_triple: Optional[Triple]
    out_triple: Optional[Triple]
    compute_cycles: int
    reconfig_cycles: int
    #: ``""`` (no change), ``"relayout"`` (FlexFlow coupling break),
    #: ``"param"`` (same family, new parameters), or ``"family"``.
    reconfig_kind: str

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.reconfig_cycles

    @property
    def label(self) -> str:
        """Human-readable configuration label for tables and traces."""
        if self.family == "flexflow":
            tm, tr, tc = self.out_triple
            tn, ti, tj = self.in_triple
            return f"out={tm}x{tr}x{tc} in={tn}x{ti}x{tj}"
        return ExternState(self.family, self.params).label


@dataclass(frozen=True)
class PerLayerPlan:
    """The solved per-layer schedule plus the fixed-dataflow yardsticks."""

    network_name: str
    array_dim: int
    reconfig_scale: float
    choices: Tuple[LayerChoice, ...]
    fixed_totals: Dict[str, int]
    fixed_params: Dict[str, str]
    reconfig_energy_pj: float

    @property
    def total_cycles(self) -> int:
        return sum(c.total_cycles for c in self.choices)

    @property
    def total_reconfig_cycles(self) -> int:
        return sum(c.reconfig_cycles for c in self.choices)

    @property
    def families(self) -> Tuple[str, ...]:
        """Distinct engine families used, in first-use order."""
        return tuple(dict.fromkeys(c.family for c in self.choices))

    @property
    def switches(self) -> int:
        """Boundaries where the configuration was reprogrammed."""
        return sum(
            1 for c in self.choices if c.reconfig_kind in ("param", "family")
        )

    @property
    def best_fixed_family(self) -> str:
        return min(
            self.fixed_totals,
            key=lambda fam: (self.fixed_totals[fam], FAMILY_ORDER.index(fam)),
        )

    @property
    def best_fixed_cycles(self) -> int:
        return self.fixed_totals[self.best_fixed_family]

    @property
    def speedup_vs_best_fixed(self) -> float:
        return self.best_fixed_cycles / self.total_cycles


def plan_payload(plan: PerLayerPlan) -> Dict[str, object]:
    """JSON-serializable view of a plan (serve responses, benchmarks)."""
    return {
        "network": plan.network_name,
        "array_dim": plan.array_dim,
        "reconfig_scale": plan.reconfig_scale,
        "total_cycles": plan.total_cycles,
        "reconfig_cycles": plan.total_reconfig_cycles,
        "reconfig_energy_pj": plan.reconfig_energy_pj,
        "switches": plan.switches,
        "families": list(plan.families),
        "best_fixed": {
            "family": plan.best_fixed_family,
            "cycles": plan.best_fixed_cycles,
            "params": plan.fixed_params[plan.best_fixed_family],
        },
        "speedup_vs_best_fixed": plan.speedup_vs_best_fixed,
        "fixed_totals": {
            family: {
                "cycles": plan.fixed_totals[family],
                "params": plan.fixed_params[family],
            }
            for family in plan.fixed_totals
        },
        "layers": [
            {
                "layer": c.layer.name,
                "family": c.family,
                "config": c.label,
                "compute_cycles": c.compute_cycles,
                "reconfig_cycles": c.reconfig_cycles,
                "reconfig_kind": c.reconfig_kind,
            }
            for c in plan.choices
        ],
    }


def format_plan(plan: PerLayerPlan) -> str:
    """The ``repro dse --per-layer`` / ``repro trace --per-layer`` table."""
    d = plan.array_dim
    rows = [
        (
            c.layer.name,
            c.family,
            c.label,
            str(c.compute_cycles),
            str(c.reconfig_cycles),
            c.reconfig_kind or "-",
        )
        for c in plan.choices
    ]
    header = ("layer", "family", "config", "compute", "reconfig", "switch")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        f"== per-layer dataflow plan: {plan.network_name} @ {d}x{d}"
        f" (reconfig scale {plan.reconfig_scale:g}) ==",
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    lines.append(
        f"plan total: {plan.total_cycles} cycles"
        f" ({plan.switches} switches, {plan.total_reconfig_cycles}"
        f" reconfiguration cycles, {plan.reconfig_energy_pj:.1f} pJ)"
    )
    best = plan.best_fixed_family
    for family in FAMILY_ORDER:
        if family not in plan.fixed_totals:
            continue
        marker = "  <- best fixed" if family == best else ""
        lines.append(
            f"fixed {family:<10} {plan.fixed_totals[family]} cycles"
            f" ({plan.fixed_params[family]}){marker}"
        )
    lines.append(
        f"speedup vs best fixed ({best}):"
        f" {plan.speedup_vs_best_fixed:.3f}x"
    )
    return "\n".join(lines)


# -- the DP -------------------------------------------------------------------

#: Unified trace record: (family, params, in_triple, out_triple,
#: reconfig_cycles, reconfig_kind) — in/out triples are None for extern
#: states.
_TraceStep = Tuple[
    str, Tuple[int, ...], Optional[Triple], Optional[Triple], int, str
]


def _solve_scalar(
    contexts,
    array_dim: int,
    row_limit: int,
    col_limit: int,
    states: Sequence[ExternState],
    ext_cycles: List[List[int]],
    cost_model: ReconfigCostModel,
) -> Tuple[int, Tuple[_TraceStep, ...], Dict[str, int]]:
    """Full-candidate pure-Python DP (``REPRO_BATCHED_MAPPER=off``)."""
    first = contexts[0].layer
    free_in_first = min(
        input_candidates(first, col_limit),
        key=lambda t: (_input_steps(first, t), t),
    )
    fin_first = _input_steps(first, free_in_first)
    n_outs = 0

    ff_best: Dict[Triple, Tuple[int, tuple]] = {}
    first_outs = output_candidates(first, row_limit, contexts[0].tr_tc_bound)
    n_outs += len(first_outs)
    for out in first_outs:
        cost = _output_steps(first, out) * fin_first
        entry = (cost, (("flexflow", (), free_in_first, out, 0, ""),))
        current = ff_best.get(out)
        if current is None or cost < current[0]:
            ff_best[out] = entry
    ex_best: List[Tuple[int, tuple]] = [
        (ext_cycles[s][0], ((st.family, st.params, None, None, 0, ""),))
        for s, st in enumerate(states)
    ]

    for idx in range(1, len(contexts)):
        layer = contexts[idx].layer
        free_in = min(
            input_candidates(layer, col_limit),
            key=lambda t: (_input_steps(layer, t), t),
        )
        fin_free = _input_steps(layer, free_in)
        penalty = relayout_penalty_cycles(layer, array_dim)
        fam_sw = cost_model.family_switch_cycles(layer)
        par_sw = cost_model.param_switch_cycles(layer)

        coupled_buckets: Dict[Optional[Triple], Tuple[int, tuple]] = {}
        best_ff_prev: Optional[Tuple[int, tuple]] = None
        for prev_out, entry in ff_best.items():
            coupled = coupled_input_triple(prev_out, layer, col_limit)
            bucket = coupled_buckets.get(coupled)
            if bucket is None or entry[0] < bucket[0]:
                coupled_buckets[coupled] = entry
            if best_ff_prev is None or entry[0] < best_ff_prev[0]:
                best_ff_prev = entry
        assert best_ff_prev is not None
        best_ex_prev = ex_best[0]
        for entry in ex_best[1:]:
            if entry[0] < best_ex_prev[0]:
                best_ex_prev = entry

        new_ff: Dict[Triple, Tuple[int, tuple]] = {}
        outs = output_candidates(layer, row_limit, contexts[idx].tr_tc_bound)
        n_outs += len(outs)
        for out in outs:
            fout = _output_steps(layer, out)
            # Option A: stay coupled with the best-matching predecessor.
            candidate: Optional[Tuple[int, tuple]] = None
            for coupled, (pc, pt) in coupled_buckets.items():
                if coupled is None:
                    continue
                cost = pc + fout * _input_steps(layer, coupled)
                if candidate is None or cost < candidate[0]:
                    candidate = (
                        cost,
                        pt + (("flexflow", (), coupled, out, 0, ""),),
                    )
            # Option B: break coupling, pay the re-layout penalty (the
            # mapper's own pricing — untouched by the reconfig scale).
            pc, pt = best_ff_prev
            cost = pc + fout * fin_free + penalty
            if candidate is None or cost < candidate[0]:
                candidate = (
                    cost,
                    pt + (("flexflow", (), free_in, out, penalty, "relayout"),),
                )
            # Option C: re-enter FlexFlow from the best extern state.
            pc, pt = best_ex_prev
            cost = pc + fout * fin_free + fam_sw
            if cost < candidate[0]:
                candidate = (
                    cost,
                    pt + (("flexflow", (), free_in, out, fam_sw, "family"),),
                )
            new_ff[out] = candidate

        new_ex: List[Tuple[int, tuple]] = []
        for s, state in enumerate(states):
            step = ext_cycles[s][idx]
            pc, pt = ex_best[s]
            candidate = (
                pc + step,
                pt + ((state.family, state.params, None, None, 0, ""),),
            )
            for o, other in enumerate(states):
                if o == s or other.family != state.family:
                    continue
                pc, pt = ex_best[o]
                cost = pc + par_sw + step
                if cost < candidate[0]:
                    candidate = (
                        cost,
                        pt
                        + (
                            (state.family, state.params, None, None,
                             par_sw, "param"),
                        ),
                    )
            for o, other in enumerate(states):
                if other.family == state.family:
                    continue
                pc, pt = ex_best[o]
                cost = pc + fam_sw + step
                if cost < candidate[0]:
                    candidate = (
                        cost,
                        pt
                        + (
                            (state.family, state.params, None, None,
                             fam_sw, "family"),
                        ),
                    )
            pc, pt = best_ff_prev
            cost = pc + fam_sw + step
            if cost < candidate[0]:
                candidate = (
                    cost,
                    pt
                    + (
                        (state.family, state.params, None, None,
                         fam_sw, "family"),
                    ),
                )
            new_ex.append(candidate)
        ff_best, ex_best = new_ff, new_ex

    last = contexts[-1].layer
    final_cost, final_trace = min(
        ff_best.items(),
        key=lambda item: (
            item[1][0],
            ceil_div(last.out_maps, item[0][0]),
            item[0],
        ),
    )[1]
    for entry in ex_best:
        if entry[0] < final_cost:
            final_cost, final_trace = entry
    counters = {"output_candidates": n_outs, "extern_states": len(states)}
    return final_cost, final_trace, counters


def _solve_batched(
    contexts,
    array_dim: int,
    row_limit: int,
    col_limit: int,
    states: Sequence[ExternState],
    ext_cycles: List[List[int]],
    cost_model: ReconfigCostModel,
) -> Tuple[int, Tuple[_TraceStep, ...], Dict[str, int]]:
    """Vectorized DP over the mapper's Pareto-pruned candidate sets.

    Bit-identical to :func:`_solve_scalar`: the FlexFlow side inherits
    the mapper's pruning + first-occurrence argmin tie-breaks, and the
    extern side runs the same strict-``<`` scans over exact ints.
    """
    first = contexts[0].layer
    next_layer = contexts[1].layer if len(contexts) > 1 else None
    outs, fout, coupled_arr, coupled_ok, bucket_first, n_full = (
        _pruned_layer_outs(
            first, contexts[0].tr_tc_bound, row_limit, col_limit, next_layer
        )
    )
    free_in_first, fin_first, _ = _best_input_batched(first, col_limit)
    ff_cost = fout * fin_first
    ff_coupled_arr, ff_coupled_ok = coupled_arr, coupled_ok
    ff_bucket_first = bucket_first
    first_outs_list = outs.tolist()
    total_candidates, kept_candidates = n_full, len(outs)

    ex_cost: List[int] = [ext_cycles[s][0] for s in range(len(states))]
    ff_back: List[tuple] = []
    ex_back: List[List[Tuple[str, int, int, str]]] = []

    for idx in range(1, len(contexts)):
        layer = contexts[idx].layer
        free_in, fin_free, _ = _best_input_batched(layer, col_limit)
        penalty = relayout_penalty_cycles(layer, array_dim)
        fam_sw = cost_model.family_switch_cycles(layer)
        par_sw = cost_model.param_switch_cycles(layer)
        next_layer = contexts[idx + 1].layer if idx + 1 < len(contexts) else None
        outs, fout, coupled_arr, coupled_ok, bucket_first, n_full = (
            _pruned_layer_outs(
                layer, contexts[idx].tr_tc_bound, row_limit, col_limit,
                next_layer,
            )
        )
        total_candidates += n_full
        kept_candidates += len(outs)

        best_ff_prev = int(np.argmin(ff_cost))
        best_ff_prev_cost = int(ff_cost[best_ff_prev])
        best_ex_prev = 0
        for s in range(1, len(states)):
            if ex_cost[s] < ex_cost[best_ex_prev]:
                best_ex_prev = s
        best_ex_prev_cost = ex_cost[best_ex_prev]

        # FlexFlow targets: coupled buckets (first-appearance order),
        # then coupling break, then extern entry — strict-< chain.
        feas = np.flatnonzero(ff_coupled_ok)
        feas = feas[np.argsort(ff_bucket_first[feas], kind="stable")]
        cost_b = best_ff_prev_cost + fin_free * fout + penalty
        if feas.size:
            fin_coupled = _steps_array(
                (layer.in_maps, layer.kernel, layer.kernel),
                ff_coupled_arr[feas],
            )
            cost_a = ff_cost[feas][:, None] + fin_coupled[:, None] * fout[None, :]
            pick_a = np.argmin(cost_a, axis=0)
            best = cost_a[pick_a, np.arange(len(outs))]
            use_b = cost_b < best
            best = np.where(use_b, cost_b, best)
            pick_a_list = pick_a.tolist()
        else:
            use_b = np.ones(len(outs), dtype=bool)
            best = cost_b
            pick_a_list = []
        cost_c = best_ex_prev_cost + fin_free * fout + fam_sw
        use_c = cost_c < best
        new_ff_cost = np.where(use_c, cost_c, best)

        ff_back.append(
            (
                use_b.tolist(),
                use_c.tolist(),
                pick_a_list,
                feas.tolist(),
                best_ff_prev,
                best_ex_prev,
                free_in,
                penalty,
                fam_sw,
                ff_coupled_arr,
                outs.tolist(),
            )
        )

        # Extern targets: the same strict-< scans as the scalar engine,
        # on exact ints (stay, param switch, family switch, FlexFlow
        # exit — in that order).
        new_ex_cost: List[int] = []
        layer_recs: List[Tuple[str, int, int, str]] = []
        for s, state in enumerate(states):
            step = ext_cycles[s][idx]
            cost = ex_cost[s] + step
            rec = ("ex", s, 0, "")
            for o, other in enumerate(states):
                if o == s or other.family != state.family:
                    continue
                cand = ex_cost[o] + par_sw + step
                if cand < cost:
                    cost, rec = cand, ("ex", o, par_sw, "param")
            for o, other in enumerate(states):
                if other.family == state.family:
                    continue
                cand = ex_cost[o] + fam_sw + step
                if cand < cost:
                    cost, rec = cand, ("ex", o, fam_sw, "family")
            cand = best_ff_prev_cost + fam_sw + step
            if cand < cost:
                cost, rec = cand, ("ff", best_ff_prev, fam_sw, "family")
            new_ex_cost.append(cost)
            layer_recs.append(rec)
        ex_back.append(layer_recs)

        ff_cost = new_ff_cost
        ff_coupled_arr, ff_coupled_ok = coupled_arr, coupled_ok
        ff_bucket_first = bucket_first
        ex_cost = new_ex_cost

    # Final selection: the pruned FlexFlow survivor first (the mapper's
    # (cost, ceil(M/Tm), triple) key collapsed it already), then extern
    # states in order, strict < throughout.
    assert len(ff_cost) == 1
    kind, j, final_cost = "ff", 0, int(ff_cost[0])
    for s in range(len(states)):
        if ex_cost[s] < final_cost:
            kind, j, final_cost = "ex", s, ex_cost[s]

    steps_rev: List[_TraceStep] = []
    for lidx in range(len(contexts) - 1, 0, -1):
        (
            use_b, use_c, pick_a, feas_list, best_ff_prev, best_ex_prev,
            free_in, penalty, fam_sw, prev_coupled, outs_list,
        ) = ff_back[lidx - 1]
        if kind == "ff":
            out_triple = tuple(outs_list[j])
            if use_c[j]:
                steps_rev.append(
                    ("flexflow", (), free_in, out_triple, fam_sw, "family")
                )
                kind, j = "ex", best_ex_prev
            elif use_b[j]:
                steps_rev.append(
                    ("flexflow", (), free_in, out_triple, penalty, "relayout")
                )
                kind, j = "ff", best_ff_prev
            else:
                winner = feas_list[pick_a[j]]
                coupled_in = tuple(prev_coupled[winner].tolist())
                steps_rev.append(
                    ("flexflow", (), coupled_in, out_triple, 0, "")
                )
                kind, j = "ff", winner
        else:
            state = states[j]
            prev_kind, prev_idx, reconf, reconf_kind = ex_back[lidx - 1][j]
            steps_rev.append(
                (state.family, state.params, None, None, reconf, reconf_kind)
            )
            kind, j = prev_kind, prev_idx
    if kind == "ff":
        steps_rev.append(
            ("flexflow", (), free_in_first, tuple(first_outs_list[j]), 0, "")
        )
    else:
        state = states[j]
        steps_rev.append((state.family, state.params, None, None, 0, ""))

    counters = {
        "output_candidates": total_candidates,
        "candidates_pruned": total_candidates - kept_candidates,
        "configs_evaluated": kept_candidates,
        "extern_states": len(states),
    }
    return final_cost, tuple(reversed(steps_rev)), counters


# -- entry point --------------------------------------------------------------


def _fixed_totals(
    network: Network,
    array_dim: int,
    states: Sequence[ExternState],
    ext_cycles: List[List[int]],
) -> Tuple[Dict[str, int], Dict[str, str]]:
    totals = {"flexflow": map_network(network, array_dim).total_cycles}
    params = {"flexflow": "coupling DP"}
    for family in EXTERN_FAMILIES:
        best: Optional[Tuple[int, str]] = None
        for s, state in enumerate(states):
            if state.family != family:
                continue
            total = sum(ext_cycles[s])
            if best is None or total < best[0]:
                best = (total, state.label)
        assert best is not None
        totals[family], params[family] = best
    return totals, params


def solve_per_layer(
    network: Network,
    array_dim: int = 16,
    *,
    reconfig_scale: float = 1.0,
) -> PerLayerPlan:
    """Solve the per-layer engine/dataflow schedule for one network.

    Returns the exact optimum over the unified state space (FlexFlow
    unrollings plus the extern grid) under the reconfiguration-cost
    model, together with every family's best *fixed* total for
    comparison.  The engine follows ``REPRO_BATCHED_MAPPER`` exactly
    like the mapper: batched by default, scalar fallback off-switch,
    bit-identical results.
    """
    if array_dim <= 0:
        raise ConfigurationError(f"array_dim must be positive, got {array_dim}")
    contexts = network.conv_contexts()
    if not contexts:
        raise MappingError(f"network {network.name!r} has no CONV layers")
    layers = [ctx.layer for ctx in contexts]
    row_limit, col_limit = _usable_limits(array_dim, None)
    cost_model = ReconfigCostModel(array_dim, reconfig_scale)
    states = family_param_states(layers, array_dim)
    num_pes = array_dim * array_dim

    with current_tracer().span(
        f"dse_per_layer:{network.name}",
        category="dse",
        labels={"dim": str(array_dim), "scale": f"{reconfig_scale:g}"},
    ) as span:
        if batched_mapper_enabled():
            ext_cycles = _extern_cycle_matrix(states, layers, num_pes)
            final_cost, trace, counters = _solve_batched(
                contexts, array_dim, row_limit, col_limit, states,
                ext_cycles, cost_model,
            )
        else:
            ext_cycles = _extern_cycle_rows(states, layers, num_pes)
            final_cost, trace, counters = _solve_scalar(
                contexts, array_dim, row_limit, col_limit, states,
                ext_cycles, cost_model,
            )
        totals, fixed_params = _fixed_totals(
            network, array_dim, states, ext_cycles
        )

        state_index = {(st.family, st.params): s for s, st in enumerate(states)}
        technology = TechnologyModel()
        choices: List[LayerChoice] = []
        energy = 0.0
        for idx, (ctx, step) in enumerate(zip(contexts, trace)):
            family, fam_params, in_triple, out_triple, reconf, reconf_kind = step
            if family == "flexflow":
                compute = _output_steps(ctx.layer, out_triple) * _input_steps(
                    ctx.layer, in_triple
                )
            else:
                compute = ext_cycles[state_index[(family, fam_params)]][idx]
            energy += cost_model.switch_energy_pj(reconf_kind, technology)
            choices.append(
                LayerChoice(
                    layer=ctx.layer,
                    family=family,
                    params=fam_params,
                    in_triple=in_triple,
                    out_triple=out_triple,
                    compute_cycles=compute,
                    reconfig_cycles=reconf,
                    reconfig_kind=reconf_kind,
                )
            )
        plan = PerLayerPlan(
            network_name=network.name,
            array_dim=array_dim,
            reconfig_scale=reconfig_scale,
            choices=tuple(choices),
            fixed_totals=totals,
            fixed_params=fixed_params,
            reconfig_energy_pj=energy,
        )
        assert plan.total_cycles == final_cost, (
            "DP cost must match reconstruction"
        )
        # The DP's state space contains every fixed schedule, so the
        # optimum can never lose to one.
        assert plan.total_cycles <= plan.best_fixed_cycles, (
            "per-layer optimum must not exceed the best fixed dataflow"
        )
        for choice in plan.choices:
            with current_tracer().span(
                f"choice:{choice.layer.name}",
                category="dse",
                labels={"family": choice.family, "config": choice.label},
            ) as choice_span:
                choice_span.add_counters(
                    {
                        "compute_cycles": choice.compute_cycles,
                        "reconfig_cycles": choice.reconfig_cycles,
                    }
                )
        span_counters = {
            "conv_layers": len(contexts),
            "plan_cycles": plan.total_cycles,
            "reconfig_cycles": plan.total_reconfig_cycles,
            "switches": plan.switches,
            "families": len(plan.families),
        }
        span_counters.update(counters)
        span.add_counters(span_counters)
    REGISTRY.counter("dse.per_layer_solves").inc()
    REGISTRY.histogram("dse.per_layer_switches").observe(plan.switches)
    return plan
