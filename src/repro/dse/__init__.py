"""Per-layer runtime-reconfigurable dataflow design-space exploration.

The mapper (:mod:`repro.dataflow.mapper`) commits one engine family and
one dataflow parameterization to a whole network.  This package answers
the FlexNN/Flex-TPU question instead: if the fabric can *reconfigure
between layers* — switching engine family (FlexFlow / Systolic /
Pipelined-Systolic / 2D-Mapping / Tiling) and dataflow parameters at a
modeled cycle/energy cost — what is the optimal per-layer schedule, and
how much does it beat the best fixed dataflow by?

It sits above both :mod:`repro.dataflow` and :mod:`repro.accelerators`
(which may not import each other's models), reusing the mapper's
Pareto-pruned coupling-DP machinery for the FlexFlow states and the
accelerator modules' closed-form cycle helpers for the rigid families.
"""

from repro.dse.perlayer import (
    EXTERN_FAMILIES,
    FAMILY_ORDER,
    ExternState,
    LayerChoice,
    PerLayerPlan,
    extern_layer_cycles,
    family_param_states,
    format_plan,
    plan_payload,
    solve_per_layer,
)
from repro.dse.reconfig import ReconfigCostModel

__all__ = [
    "EXTERN_FAMILIES",
    "FAMILY_ORDER",
    "ExternState",
    "LayerChoice",
    "PerLayerPlan",
    "ReconfigCostModel",
    "extern_layer_cycles",
    "family_param_states",
    "format_plan",
    "plan_payload",
    "solve_per_layer",
]
