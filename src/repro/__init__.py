"""FlexFlow (HPCA 2017) reproduction: a flexible-dataflow CNN accelerator
architecture library.

The package implements the paper's complete system in Python:

* :mod:`repro.nn` — CNN workload substrate (layer specs, the six Table 1
  workloads, NumPy golden model);
* :mod:`repro.arch` — hardware substrate (65 nm technology model, buffers,
  local stores with the Figure 11 addressing FSM, interconnect, area and
  power models);
* :mod:`repro.dataflow` — the paper's core contribution: unrolling
  factors, the eight processing styles, Eq. 2/3 utilization, the Section 5
  parallelism-determination mapper, logical PE grouping, IADP/IPDR;
* :mod:`repro.accelerators` — analytical models of Systolic, 2D-Mapping,
  Tiling, and FlexFlow;
* :mod:`repro.sim` — functional cycle-level simulators validated against
  the golden model;
* :mod:`repro.compiler` — the configuration compiler and assembler;
* :mod:`repro.metrics` / :mod:`repro.experiments` — every evaluation
  table and figure, regenerated.

Quick start::

    from repro import FlexFlowAccelerator, get_workload

    result = FlexFlowAccelerator().simulate_network(get_workload("LeNet-5"))
    print(result.gops, result.overall_utilization)
"""

from repro.accelerators import (
    Accelerator,
    FlexFlowAccelerator,
    LayerResult,
    Mapping2DAccelerator,
    NetworkResult,
    SystolicAccelerator,
    TilingAccelerator,
    make_accelerator,
)
from repro.arch import ArchConfig, DEFAULT_CONFIG, TSMC65, TechnologyModel
from repro.compiler import Program, compile_network, parse_asm, to_asm
from repro.dataflow import (
    LayerMapping,
    NetworkMapping,
    ProcessingStyle,
    UnrollingFactors,
    map_layer,
    map_network,
)
from repro.errors import (
    CapacityError,
    CompilationError,
    ConfigurationError,
    MappingError,
    ReproError,
    SimulationError,
    SpecificationError,
)
from repro.experiments import ALL_EXPERIMENTS, run_experiment
from repro.nn import (
    ConvLayer,
    FCLayer,
    InputSpec,
    Network,
    PoolLayer,
    all_workloads,
    get_workload,
)
from repro.sim import (
    FlexFlowFunctionalSim,
    Mapping2DFunctionalSim,
    SystolicFunctionalSim,
    TilingFunctionalSim,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # accelerators
    "Accelerator",
    "FlexFlowAccelerator",
    "SystolicAccelerator",
    "Mapping2DAccelerator",
    "TilingAccelerator",
    "make_accelerator",
    "LayerResult",
    "NetworkResult",
    # arch
    "ArchConfig",
    "DEFAULT_CONFIG",
    "TechnologyModel",
    "TSMC65",
    # compiler
    "Program",
    "compile_network",
    "to_asm",
    "parse_asm",
    # dataflow
    "UnrollingFactors",
    "ProcessingStyle",
    "LayerMapping",
    "NetworkMapping",
    "map_layer",
    "map_network",
    # errors
    "ReproError",
    "SpecificationError",
    "MappingError",
    "SimulationError",
    "CapacityError",
    "CompilationError",
    "ConfigurationError",
    # experiments
    "ALL_EXPERIMENTS",
    "run_experiment",
    # nn
    "ConvLayer",
    "PoolLayer",
    "FCLayer",
    "InputSpec",
    "Network",
    "get_workload",
    "all_workloads",
    # sim
    "FlexFlowFunctionalSim",
    "SystolicFunctionalSim",
    "Mapping2DFunctionalSim",
    "TilingFunctionalSim",
]
