"""Exception hierarchy for the FlexFlow reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of ``repro`` with one ``except`` clause while
still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class SpecificationError(ReproError):
    """A layer or network specification is malformed or inconsistent.

    Raised when a layer's declared shapes do not line up (e.g. a CONV layer
    whose input feature-map count differs from the previous layer's output
    count), or when a parameter is out of its valid domain (negative sizes,
    zero kernels, ...).
    """


class MappingError(ReproError):
    """A dataflow mapping request cannot be satisfied.

    Raised when unrolling factors violate the Eq. 1 feasibility constraints,
    when a layer cannot be mapped onto the requested PE array, or when
    inter-layer coupling constraints are contradictory.
    """


class SimulationError(ReproError):
    """A functional simulation reached an inconsistent machine state.

    Raised for events such as reading a local-store address that was never
    written, an address-generation FSM transition that the paper's state
    machine does not define, or a PE array result that fails its internal
    sanity checks.
    """


class CapacityError(ReproError):
    """On-chip storage is too small for the requested working set.

    Raised by buffer models when an IADP placement does not fit, and by
    local stores when a tile exceeds the per-PE store capacity.
    """


class CompilationError(ReproError):
    """The layer-to-instruction compiler could not produce a program.

    Raised for unsupported layer types, malformed assembly text, and
    encode/decode mismatches.
    """


class ConfigurationError(ReproError):
    """An architecture configuration is invalid.

    Raised for non-positive PE array dimensions, zero clock frequencies,
    unknown technology nodes, and similar configuration-time mistakes.
    """


class ExperimentError(ReproError):
    """An experiment run failed in the resilient runner.

    Raised when an experiment's worker process crashes, times out, or
    exhausts its retries; the message carries the experiment id and the
    terminal failure.
    """
