"""Functional simulation of the Systolic (SFSNMS) pipeline dataflow.

Implements Section 3.1's machine literally: a ``K x K`` PE array where

* one input neuron is broadcast to all PEs per cycle (raster order over
  the input map),
* PE ``(i, j)`` holds constant synapse ``K(i, j)`` in a register and, at
  the cycle when neuron ``I(rr, cc)`` is broadcast, accumulates into the
  in-flight output neuron ``O(rr - i, cc - j)``,
* in-flight outputs shift one PE to the right each cycle, cross row
  boundaries through inter-row FIFOs of depth ``W - K`` (the paper's
  12 - 3 = 9 example), and drain complete at PE ``(K-1, K-1)``.

Each in-flight output carries its coordinates, so the simulator *checks*
the shift/FIFO timing invariant (``r = rr - i, c = cc - j``) instead of
assuming it — a wrong FIFO depth or shift order fails loudly.

Multiple (input map, output map) pairs run sequentially on one array,
accumulating partial output maps across input maps, exactly as the single
array of a DC-CNN-style design would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.interconnect import FifoLink
from repro.errors import SimulationError, SpecificationError
from repro.nn.layers import ConvLayer
from repro.nn.reference import pad_input
from repro.obs.tracer import Tracer, current_tracer
from repro.sim.trace import SimTrace


@dataclass
class _Flight:
    """An in-flight output neuron moving through the pipeline."""

    r: int
    c: int
    acc: float


class SystolicFunctionalSim:
    """Cycle-level functional model of one systolic array."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer

    def run_layer(
        self, layer: ConvLayer, inputs: np.ndarray, kernels: np.ndarray
    ) -> Tuple[np.ndarray, SimTrace]:
        """Execute a CONV layer on a ``K x K`` systolic array.

        Only stride-1 layers are supported — the systolic shift dataflow
        produces one output per broadcast, which is exactly the stride-1
        schedule (the paper's baselines share this restriction).
        """
        if layer.stride != 1:
            raise SpecificationError("systolic dataflow models stride-1 layers")
        if tuple(inputs.shape) != layer.input_shape:
            raise SpecificationError(
                f"inputs shape {inputs.shape} != {layer.input_shape}"
            )
        if tuple(kernels.shape) != layer.kernel_shape:
            raise SpecificationError(
                f"kernels shape {kernels.shape} != {layer.kernel_shape}"
            )
        padded = pad_input(inputs, layer.padding)
        outputs = np.zeros((layer.out_maps, layer.out_size, layer.out_size))
        trace = SimTrace()
        tracer = self.tracer if self.tracer is not None else current_tracer()
        with tracer.span(
            f"conv:{layer.name}", category="sim.systolic"
        ) as span:
            for m in range(layer.out_maps):
                for n in range(layer.in_maps):
                    self._run_pair(
                        padded[n], kernels[m, n], outputs[m], layer.out_size, trace
                    )
            if tracer.enabled:
                span.set_cycles(trace.cycles)
                span.add_counters(trace.as_dict())
        return outputs, trace

    def _run_pair(
        self,
        image: np.ndarray,
        kernel: np.ndarray,
        out_map: np.ndarray,
        out_size: int,
        trace: SimTrace,
    ) -> None:
        k = kernel.shape[0]
        width = image.shape[1]
        height = image.shape[0]
        fifo_depth = max(1, width - k)
        # regs[i][j] is the output currently resident at PE (i, j).
        regs: List[List[Optional[_Flight]]] = [[None] * k for _ in range(k)]
        fifos = [FifoLink(fifo_depth + 1, name=f"row-fifo-{i}") for i in range(k - 1)]

        # The raster runs K extra virtual rows past the image: the pipeline
        # drain, during which no neurons are broadcast but in-flight
        # outputs keep shifting toward the exit.
        for rr in range(height + k):
            for cc in range(width):
                trace.cycles += 1
                real = rr < height
                value = image[rr, cc] if real else 0.0
                if real:
                    trace.neuron_buffer_reads += 1
                    trace.bus_transfers += 1  # broadcast to all PEs
                # Shift phase: rightmost column exits first.
                for i in range(k):
                    exiting = regs[i][k - 1]
                    if exiting is not None:
                        if i < k - 1:
                            fifos[i].push(exiting)
                            trace.fifo_accesses += 1
                        elif 0 <= exiting.r < out_size and 0 <= exiting.c < out_size:
                            # Drained complete at PE (K-1, K-1); edge
                            # flights (invalid windows) are discarded.
                            out_map[exiting.r, exiting.c] += exiting.acc
                            trace.neuron_buffer_writes += 1
                    for j in range(k - 1, 0, -1):
                        regs[i][j] = regs[i][j - 1]
                    if i == 0:
                        # A fresh output O(rr, cc) enters the first stage
                        # (none during the drain rows).
                        regs[0][0] = _Flight(r=rr, c=cc, acc=0.0) if real else None
                    else:
                        entering = None
                        fifo = fifos[i - 1]
                        if not fifo.empty and fifo.peek().r == rr - i and fifo.peek().c == cc:
                            entering = fifo.pop()
                            trace.fifo_accesses += 1
                        regs[i][0] = entering
                # Accumulate phase: every PE multiplies the broadcast neuron
                # by its resident synapse into its in-flight output.
                for i in range(k):
                    for j in range(k):
                        flight = regs[i][j]
                        if flight is None:
                            continue
                        # One stage per cycle: the flight at PE (i, j) is
                        # the one injected i*W + j cycles ago, in raster
                        # (linear) terms.  Row wraps borrow across rows for
                        # edge flights, hence the linear-index invariant.
                        expected_linear = rr * width + cc - i * width - j
                        if flight.r * width + flight.c != expected_linear:
                            raise SimulationError(
                                f"pipeline timing broken at PE({i},{j}): output"
                                f" ({flight.r},{flight.c}) at broadcast"
                                f" ({rr},{cc})"
                            )
                        contributes = (
                            real
                            and 0 <= flight.r < out_size
                            and 0 <= flight.c < out_size
                            and flight.r + i == rr
                            and flight.c + j == cc
                        )
                        if contributes:
                            flight.acc += value * kernel[i, j]
                            trace.mac_ops += 1
                            trace.register_accesses += 2
        for i in range(k - 1):
            if not fifos[i].empty:
                raise SimulationError(f"row FIFO {i} not drained at end of layer")
