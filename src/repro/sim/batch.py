"""Batched structure-of-arrays analytic evaluator for DSE sweeps.

The scalar closed forms in :mod:`repro.sim.analytic` make one Python call
per ``(layer, factors)`` configuration.  A design-space sweep evaluates
thousands of such configurations — every candidate unrolling of every
layer at every array scale — which is exactly the shape MPNA/FlexNN-style
bulk dataflow search rewards: hoist the per-configuration arithmetic into
a handful of vectorized numpy passes over parallel arrays.

This module keeps the *mathematics* of the scalar engine and changes only
the evaluation order, so every :class:`~repro.sim.trace.SimTrace` counter
it returns is **bit-identical** to ``engine="analytic"`` (pinned by the
hypothesis suite in ``tests/sim/test_batch.py``, which in turn inherits
the scalar engine's pin against the tile engine):

* All pure closed forms (cycles, MACs, register/buffer traffic, the
  kernel-store fits/thrashes dichotomy) evaluate as broadcasted integer
  array expressions over padded ``(B, max_columns)`` / ``(B, max_rows)``
  class tables.  The kernel-store sum is regrouped from the scalar
  ``sum over (rc, col)`` outer product into ``sum_col l_col * (thrash ?
  sum_rc nat : sum_rc min(nat, 1))`` — an integer-exact refactoring that
  avoids materializing the product.
* The neuron-store replay is genuinely history-dependent, so it is not
  re-derived: distinct ``(layer shape, factors, capacity)`` keys are
  deduplicated and each runs the scalar
  :func:`~repro.sim.analytic._neuron_store_replay` once — bit-identity by
  construction, and a sweep whose configurations repeat (the common case)
  pays for each distinct replay once.

The optional ``array_dims`` / ``usable_rows`` / ``usable_cols`` inputs
carry the Eq. 1 context (and a fault mask's live-grid summary) purely for
*validation*: the trace itself is independent of the array dimension and
of any permanent-fault mask given the factors — a mask changes which
physical PEs execute, not what they execute.

The three baseline dataflows (systolic / 2D-mapping / tiling) have fully
static schedules; their batched forms are plain array arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dataflow.unrolling import UnrollingFactors
from repro.errors import MappingError, SpecificationError
from repro.kernels import active_kernels, count_kernel_call
from repro.nn.layers import ConvLayer
from repro.sim.analytic import _neuron_store_replay
from repro.sim.trace import SimTrace

__all__ = [
    "LayerBatch",
    "FactorBatch",
    "TraceBatch",
    "batch_flexflow_traces",
    "batch_systolic_traces",
    "batch_mapping2d_traces",
    "batch_tiling_traces",
    "cdiv_array",
]


def _as_int_array(values, name: str, batch: Optional[int] = None) -> np.ndarray:
    """Coerce scalars/sequences to a 1-D int64 array, broadcasting scalars."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim == 0 and batch is not None:
        arr = np.full(batch, int(arr), dtype=np.int64)
    if arr.ndim != 1:
        raise SpecificationError(f"{name} must be a 1-D array, got shape {arr.shape}")
    return arr


def _cdiv(value: np.ndarray, divisor: np.ndarray) -> np.ndarray:
    """Element-wise ``ceil(value / divisor)`` on non-negative int arrays."""
    return -(-value // divisor)


#: Public alias — the per-layer DSE's structure-of-arrays scoring path
#: (:mod:`repro.dse.perlayer`) builds its extern cycle matrices on it.
cdiv_array = _cdiv


def _ceil_counts_2d(
    extent: np.ndarray, offsets: np.ndarray, step: np.ndarray
) -> np.ndarray:
    """Batched ``ceil(max(0, extent - offset) / step)``.

    ``extent``/``step`` are per-configuration ``(B, 1)`` columns and
    ``offsets`` a ``(B, W)`` class table — the batched form of the scalar
    engine's ``_ceil_counts``.
    """
    return -(-np.maximum(extent - offsets, 0) // step)


@dataclass(frozen=True)
class LayerBatch:
    """Parallel arrays of CONV layer shapes (one entry per configuration)."""

    in_maps: np.ndarray  # N
    out_maps: np.ndarray  # M
    out_size: np.ndarray  # S
    kernel: np.ndarray  # K
    stride: np.ndarray
    in_size: np.ndarray
    padding: np.ndarray

    @classmethod
    def from_layers(cls, layers: Sequence[ConvLayer]) -> "LayerBatch":
        def col(attr: str) -> np.ndarray:
            return np.array(
                [getattr(layer, attr) for layer in layers], dtype=np.int64
            )

        return cls(
            in_maps=col("in_maps"),
            out_maps=col("out_maps"),
            out_size=col("out_size"),
            kernel=col("kernel"),
            stride=col("stride"),
            in_size=col("in_size"),
            padding=col("padding"),
        )

    def __len__(self) -> int:
        return len(self.in_maps)

    def layer(self, index: int) -> ConvLayer:
        """Materialize one row back into a :class:`ConvLayer` spec."""
        return ConvLayer(
            name=f"batch[{index}]",
            in_maps=int(self.in_maps[index]),
            out_maps=int(self.out_maps[index]),
            out_size=int(self.out_size[index]),
            kernel=int(self.kernel[index]),
            stride=int(self.stride[index]),
            explicit_in_size=int(self.in_size[index]),
        )

    @property
    def macs(self) -> np.ndarray:
        return (
            self.out_maps
            * self.in_maps
            * self.out_size
            * self.out_size
            * self.kernel
            * self.kernel
        )


@dataclass(frozen=True)
class FactorBatch:
    """Parallel arrays of unrolling factors ``<Tm, Tn, Tr, Tc, Ti, Tj>``."""

    tm: np.ndarray
    tn: np.ndarray
    tr: np.ndarray
    tc: np.ndarray
    ti: np.ndarray
    tj: np.ndarray

    @classmethod
    def from_factors(cls, factors: Sequence[UnrollingFactors]) -> "FactorBatch":
        def col(attr: str) -> np.ndarray:
            return np.array([getattr(f, attr) for f in factors], dtype=np.int64)

        return cls(
            tm=col("tm"), tn=col("tn"), tr=col("tr"),
            tc=col("tc"), ti=col("ti"), tj=col("tj"),
        )

    def __len__(self) -> int:
        return len(self.tm)

    def factors(self, index: int) -> UnrollingFactors:
        return UnrollingFactors(
            tm=int(self.tm[index]), tn=int(self.tn[index]),
            tr=int(self.tr[index]), tc=int(self.tc[index]),
            ti=int(self.ti[index]), tj=int(self.tj[index]),
        )

    @property
    def row_occupancy(self) -> np.ndarray:
        """Per-configuration ``Tn * Ti * Tj`` (PE columns used)."""
        return self.tn * self.ti * self.tj

    @property
    def column_occupancy(self) -> np.ndarray:
        """Per-configuration ``Tm * Tr * Tc`` (PE rows used)."""
        return self.tm * self.tr * self.tc


@dataclass
class TraceBatch:
    """Every :class:`SimTrace` counter as a parallel int64 array."""

    cycles: np.ndarray
    mac_ops: np.ndarray
    neuron_buffer_reads: np.ndarray
    neuron_buffer_writes: np.ndarray
    neuron_buffer_partial_reads: np.ndarray
    kernel_buffer_reads: np.ndarray
    local_store_reads: np.ndarray
    local_store_writes: np.ndarray
    fifo_accesses: np.ndarray
    register_accesses: np.ndarray
    bus_transfers: np.ndarray

    def __len__(self) -> int:
        return len(self.cycles)

    @classmethod
    def zeros(cls, batch: int) -> "TraceBatch":
        return cls(
            **{
                field.name: np.zeros(batch, dtype=np.int64)
                for field in fields(cls)
            }
        )

    def trace(self, index: int) -> SimTrace:
        """One configuration's counters as a plain-int :class:`SimTrace`."""
        trace = SimTrace()
        for field in fields(self):
            setattr(trace, field.name, int(getattr(self, field.name)[index]))
        return trace

    def traces(self) -> List[SimTrace]:
        return [self.trace(i) for i in range(len(self))]


LayersLike = Union[LayerBatch, Sequence[ConvLayer]]
FactorsLike = Union[FactorBatch, Sequence[UnrollingFactors]]


def _coerce_layers(layers: LayersLike) -> LayerBatch:
    if isinstance(layers, LayerBatch):
        return layers
    return LayerBatch.from_layers(layers)


def _coerce_factors(factors: FactorsLike) -> FactorBatch:
    if isinstance(factors, FactorBatch):
        return factors
    return FactorBatch.from_factors(factors)


def _validate_packing(
    layers: LayerBatch,
    f: FactorBatch,
    array_dims: Optional[np.ndarray],
    usable_rows: Optional[np.ndarray],
    usable_cols: Optional[np.ndarray],
) -> None:
    """Vectorized Eq. 1 feasibility over the whole batch.

    ``array_dims`` (and the optional live-grid ``usable_rows`` /
    ``usable_cols`` mask summaries, which default to it) exist only for
    this check — the trace itself does not depend on them.
    """
    batch = len(layers)
    bounds = (
        (f.tm, layers.out_maps, "Tm", "M"),
        (f.tn, layers.in_maps, "Tn", "N"),
        (f.tr, layers.out_size, "Tr", "S"),
        (f.tc, layers.out_size, "Tc", "S"),
        (f.ti, layers.kernel, "Ti", "K"),
        (f.tj, layers.kernel, "Tj", "K"),
    )
    for value, upper, name, label in bounds:
        bad = np.flatnonzero(value > upper)
        if bad.size:
            i = int(bad[0])
            raise MappingError(
                f"batch[{i}]: {name}={int(value[i])} exceeds"
                f" {label}={int(upper[i])}"
            )
    if array_dims is None:
        return
    dims = _as_int_array(array_dims, "array_dims", batch)
    rows = dims if usable_rows is None else _as_int_array(
        usable_rows, "usable_rows", batch
    )
    cols = dims if usable_cols is None else _as_int_array(
        usable_cols, "usable_cols", batch
    )
    for arr, name in ((dims, "array_dims"), (rows, "usable_rows"), (cols, "usable_cols")):
        if len(arr) != batch:
            raise SpecificationError(
                f"{name} has {len(arr)} entries for a batch of {batch}"
            )
    bad = np.flatnonzero(f.row_occupancy > cols)
    if bad.size:
        i = int(bad[0])
        raise MappingError(
            f"batch[{i}]: Tn*Ti*Tj={int(f.row_occupancy[i])} exceeds the"
            f" {int(cols[i])} usable columns (D={int(dims[i])})"
        )
    bad = np.flatnonzero(f.column_occupancy > rows)
    if bad.size:
        i = int(bad[0])
        raise MappingError(
            f"batch[{i}]: Tm*Tr*Tc={int(f.column_occupancy[i])} exceeds the"
            f" {int(rows[i])} usable rows (D={int(dims[i])})"
        )


def batch_flexflow_traces(
    layers: LayersLike,
    factors: FactorsLike,
    *,
    neuron_store_words,
    kernel_store_words,
    array_dims=None,
    usable_rows=None,
    usable_cols=None,
) -> TraceBatch:
    """Batched, bit-identical :func:`~repro.sim.analytic.analytic_flexflow_trace`.

    Entry ``i`` of the result equals
    ``analytic_flexflow_trace(layers[i], factors[i], ...)`` exactly.  Store
    capacities broadcast from scalars or vary per configuration.
    """
    layers = _coerce_layers(layers)
    f = _coerce_factors(factors)
    batch = len(layers)
    if len(f) != batch:
        raise SpecificationError(
            f"factor batch has {len(f)} entries for {batch} layers"
        )
    out = TraceBatch.zeros(batch)
    if batch == 0:
        return out
    neuron_caps = _as_int_array(neuron_store_words, "neuron_store_words", batch)
    kernel_caps = _as_int_array(kernel_store_words, "kernel_store_words", batch)
    for caps, name in ((neuron_caps, "neuron_store_words"),
                       (kernel_caps, "kernel_store_words")):
        if len(caps) != batch:
            raise SpecificationError(
                f"{name} has {len(caps)} entries for a batch of {batch}"
            )
    _validate_packing(layers, f, array_dims, usable_rows, usable_cols)

    n_total = layers.in_maps[:, None]
    k_total = layers.kernel[:, None]
    s_total = layers.out_size[:, None]
    m_total = layers.out_maps

    # Column classes (dn, di, dj), padded to the widest row occupancy.
    # Invalid (past-occupancy) columns contribute zero to every sum.
    # (The replay below needs these tables even when the kernel-store
    # sums run in a compiled kernel.)
    occupancy = f.row_occupancy
    col_idx = np.arange(int(occupancy.max()))[None, :]
    col_valid = col_idx < occupancy[:, None]
    dn, rest = np.divmod(col_idx, (f.ti * f.tj)[:, None])
    di, dj = np.divmod(rest, f.tj[:, None])

    # Row offset classes (dr, dc), padded to the widest Tr*Tc.
    rc_count = f.tr * f.tc
    rc_idx = np.arange(int(rc_count.max()))[None, :]
    rc_valid = rc_idx < rc_count[:, None]
    dr, dc = np.divmod(rc_idx, f.tc[:, None])
    n_spatial = _cdiv(layers.out_size, f.tr) * _cdiv(layers.out_size, f.tc)

    f_in = (
        _cdiv(layers.in_maps, f.tn)
        * _cdiv(layers.kernel, f.ti)
        * _cdiv(layers.kernel, f.tj)
    )
    f_out = _cdiv(layers.out_maps, f.tm) * n_spatial
    macs = layers.macs
    s2 = layers.out_size * layers.out_size

    out.cycles = f_in * f_out
    out.mac_ops = macs
    out.local_store_reads = 2 * macs
    out.register_accesses = 2 * f_in * m_total * s2
    out.neuron_buffer_writes = m_total * s2

    # Kernel-store dichotomy, regrouped to avoid the (rc x col) product:
    # sum_{rc,col} where(thrash, l*nat, l*min(nat,1))
    #   = sum_col l_col * (thrash ? sum_rc nat : sum_rc min(nat, 1)).
    suite = active_kernels()
    if suite is not None:
        kernel_bus, kernel_misses = suite.flexflow_store_sums(
            layers.in_maps, layers.kernel, layers.out_size, m_total,
            f.tn, f.ti, f.tj, f.tr, f.tc, kernel_caps,
        )
        count_kernel_call("flexflow_store_sums", suite.backend)
    else:
        l_col = (
            _ceil_counts_2d(n_total, dn, f.tn[:, None])
            * _ceil_counts_2d(k_total, di, f.ti[:, None])
            * _ceil_counts_2d(k_total, dj, f.tj[:, None])
        )
        l_col = np.where(col_valid, l_col, 0)
        nat = _ceil_counts_2d(s_total, dr, f.tr[:, None]) * _ceil_counts_2d(
            s_total, dc, f.tc[:, None]
        )
        nat = np.where(rc_valid, nat, 0)
        thrash = l_col > kernel_caps[:, None]
        kernel_bus = m_total * np.where(
            thrash, l_col * n_spatial[:, None], l_col
        ).sum(axis=1)
        sum_nat = nat.sum(axis=1)
        cnt_nat = np.minimum(nat, 1).sum(axis=1)
        kernel_misses = m_total * np.where(
            thrash, l_col * sum_nat[:, None], l_col * cnt_nat[:, None]
        ).sum(axis=1)

    neuron_bus, neuron_misses = _batched_neuron_replay(
        layers, f, neuron_caps, dn=dn, di=di, dj=dj, dr=dr, dc=dc
    )

    out.kernel_buffer_reads = kernel_bus
    out.neuron_buffer_reads = neuron_bus
    out.bus_transfers = kernel_bus + neuron_bus
    out.local_store_writes = kernel_misses + neuron_misses
    return out


def _batched_neuron_replay(
    layers: LayerBatch,
    f: FactorBatch,
    capacities: np.ndarray,
    *,
    dn: np.ndarray,
    di: np.ndarray,
    dj: np.ndarray,
    dr: np.ndarray,
    dc: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Neuron-store ``(bus, writes)`` per configuration, via deduped replay.

    The replay is the one history-dependent part of the FlexFlow closed
    forms, so each *distinct* ``(layer shape, factors, capacity)`` key runs
    the scalar :func:`_neuron_store_replay` once and every duplicate
    configuration reuses the result — exact by construction.
    """
    batch = len(layers)
    bus = np.zeros(batch, dtype=np.int64)
    writes = np.zeros(batch, dtype=np.int64)
    seen: Dict[tuple, Tuple[int, int]] = {}
    for i in range(batch):
        key = (
            int(layers.in_maps[i]), int(layers.out_maps[i]),
            int(layers.kernel[i]), int(layers.out_size[i]),
            int(layers.stride[i]),
            int(layers.in_size[i]), int(layers.padding[i]),
            int(f.tm[i]), int(f.tn[i]), int(f.tr[i]),
            int(f.tc[i]), int(f.ti[i]), int(f.tj[i]),
            int(capacities[i]),
        )
        hit = seen.get(key)
        if hit is None:
            occupancy = int(f.tn[i] * f.ti[i] * f.tj[i])
            rc = int(f.tr[i] * f.tc[i])
            hit = _neuron_store_replay(
                layers.layer(i),
                f.factors(i),
                int(capacities[i]),
                dn=dn[i, :occupancy],
                di=di[i, :occupancy],
                dj=dj[i, :occupancy],
                dr=dr[i, :rc],
                dc=dc[i, :rc],
            )
            seen[key] = hit
        bus[i], writes[i] = hit
    return bus, writes


# -- baseline dataflows --------------------------------------------------------


def batch_systolic_traces(layers: LayersLike) -> TraceBatch:
    """Batched, bit-identical :func:`~repro.sim.analytic.analytic_systolic_trace`."""
    layers = _coerce_layers(layers)
    out = TraceBatch.zeros(len(layers))
    if len(layers) == 0:
        return out
    bad = np.flatnonzero(layers.stride != 1)
    if bad.size:
        raise SpecificationError(
            f"systolic dataflow models stride-1 layers (batch[{int(bad[0])}])"
        )
    k = layers.kernel
    side = layers.in_size + layers.padding
    pairs = layers.out_maps * layers.in_maps
    broadcasts = pairs * side * side
    out.cycles = pairs * (side + k) * side
    out.neuron_buffer_reads = broadcasts
    out.bus_transfers = broadcasts
    out.neuron_buffer_writes = pairs * layers.out_size * layers.out_size
    out.fifo_accesses = 2 * (k - 1) * broadcasts
    out.mac_ops = layers.macs
    out.register_accesses = 2 * layers.macs
    return out


def batch_mapping2d_traces(layers: LayersLike, block_sizes) -> TraceBatch:
    """Batched, bit-identical :func:`~repro.sim.analytic.analytic_mapping2d_trace`.

    The scalar form iterates the (at most 2x2) full/remainder block-shape
    decomposition; here each of the four (row-shape, col-shape) terms is a
    masked array expression.
    """
    layers = _coerce_layers(layers)
    out = TraceBatch.zeros(len(layers))
    if len(layers) == 0:
        return out
    blocks = _as_int_array(block_sizes, "block_sizes", len(layers))
    if len(blocks) != len(layers):
        raise SpecificationError(
            f"block_sizes has {len(blocks)} entries for {len(layers)} layers"
        )
    if np.any(blocks <= 0):
        i = int(np.flatnonzero(blocks <= 0)[0])
        raise SpecificationError(
            f"block_size must be positive, got {int(blocks[i])}"
        )
    bad = np.flatnonzero(layers.stride != 1)
    if bad.size:
        raise SpecificationError(
            f"2D-Mapping dataflow models stride-1 layers (batch[{int(bad[0])}])"
        )
    k = layers.kernel
    m_total, n_total = layers.out_maps, layers.in_maps
    full, rem = np.divmod(layers.out_size, blocks)
    # The decomposition yields up to two 1-D shapes: (block, full) when
    # full > 0 and (rem, 1) when rem > 0; a zero multiplicity masks the
    # whole term out, matching the scalar loop skipping the shape.
    row_shapes = ((blocks, full), (rem, np.minimum(rem, 1)))
    for rows, row_mult in row_shapes:
        for cols, col_mult in row_shapes:
            mult = row_mult * col_mult
            active = (mult > 0) & (rows > 0) & (cols > 0)
            n_blocks = np.where(active, m_total * mult, 0)
            runs = n_blocks * n_total
            reused = np.where(
                active, (rows - 1) * np.maximum(0, cols - (k - 1)), 0
            )
            k2 = k * k
            out.cycles += runs * k2
            out.kernel_buffer_reads += runs * k2
            out.bus_transfers += runs * k2
            out.mac_ops += runs * k2 * rows * cols
            out.register_accesses += 2 * runs * k2 * rows * cols
            out.neuron_buffer_reads += runs * (
                rows * cols
                + k * (k - 1) * rows
                + (k - 1) * (rows * cols - reused)
            ) * active
            out.fifo_accesses += runs * (
                2 * k * (k - 1) * rows * (cols - 1)
                + 2 * (k - 1) * reused
            ) * active
            out.neuron_buffer_writes += n_blocks * rows * cols
    return out


def batch_tiling_traces(layers: LayersLike, tm, tn) -> TraceBatch:
    """Batched, bit-identical :func:`~repro.sim.analytic.analytic_tiling_trace`."""
    layers = _coerce_layers(layers)
    out = TraceBatch.zeros(len(layers))
    if len(layers) == 0:
        return out
    tm = _as_int_array(tm, "tm", len(layers))
    tn = _as_int_array(tn, "tn", len(layers))
    for arr, name in ((tm, "tm"), (tn, "tn")):
        if len(arr) != len(layers):
            raise SpecificationError(
                f"{name} has {len(arr)} entries for {len(layers)} layers"
            )
    if np.any(tm <= 0) or np.any(tn <= 0):
        raise SpecificationError("tile factors must be positive")
    s2 = layers.out_size * layers.out_size
    k2 = layers.kernel * layers.kernel
    m_total, n_total = layers.out_maps, layers.in_maps
    m_rounds = _cdiv(m_total, tm)
    n_rounds = _cdiv(n_total, tn)
    out.cycles = m_rounds * n_rounds * s2 * k2
    out.neuron_buffer_reads = m_rounds * n_total * s2 * k2
    out.bus_transfers = m_rounds * n_total * s2 * k2
    out.kernel_buffer_reads = m_total * n_total * s2 * k2
    out.mac_ops = layers.macs
    out.register_accesses = 2 * m_total * n_rounds * s2 * k2
    out.neuron_buffer_partial_reads = m_total * (n_rounds - 1) * s2
    out.neuron_buffer_writes = m_total * n_rounds * s2
    return out
