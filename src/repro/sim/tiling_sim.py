"""Functional simulation of the Tiling (MFSNSS) adder-tree dataflow.

Section 3.3's machine: ``Tm`` PE clusters, each with ``Tn`` multipliers
feeding an adder tree.  Per cycle, one synapse position ``(i, j)`` of one
output position ``(r, c)`` is processed: ``Tn`` input neurons are loaded
and broadcast to all clusters, each cluster loads its own ``Tn`` private
synapses, multiplies, reduces through its tree, and accumulates into its
output register.  After ``K^2`` cycles each cluster has one finished
(partial, if ``N > Tn``) output neuron.

The simulator counts the signature zero-reuse synapse traffic (one kernel
word per multiplier per cycle) and the partial-sum round-trips when the
input maps exceed ``Tn``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.nn.layers import ConvLayer
from repro.nn.reference import pad_input
from repro.obs.tracer import Tracer, current_tracer
from repro.sim.trace import SimTrace


class TilingFunctionalSim:
    """Cycle-level functional model of the tiling engine."""

    def __init__(
        self, tm: int = 16, tn: int = 16, tracer: Optional[Tracer] = None
    ) -> None:
        if tm <= 0 or tn <= 0:
            raise SpecificationError("tile factors must be positive")
        self.tm = tm
        self.tn = tn
        self.tracer = tracer

    def run_layer(
        self, layer: ConvLayer, inputs: np.ndarray, kernels: np.ndarray
    ) -> Tuple[np.ndarray, SimTrace]:
        """Execute a CONV layer tile group by tile group."""
        if tuple(inputs.shape) != layer.input_shape:
            raise SpecificationError(
                f"inputs shape {inputs.shape} != {layer.input_shape}"
            )
        if tuple(kernels.shape) != layer.kernel_shape:
            raise SpecificationError(
                f"kernels shape {kernels.shape} != {layer.kernel_shape}"
            )
        padded = pad_input(inputs, layer.padding)
        out = np.zeros((layer.out_maps, layer.out_size, layer.out_size))
        trace = SimTrace()
        stride = layer.stride
        k = layer.kernel
        tracer = self.tracer if self.tracer is not None else current_tracer()
        with tracer.span(
            f"conv:{layer.name}", category="sim.tiling"
        ) as span:
            for m0 in range(0, layer.out_maps, self.tm):
                m_hi = min(m0 + self.tm, layer.out_maps)
                for n0 in range(0, layer.in_maps, self.tn):
                    n_hi = min(n0 + self.tn, layer.in_maps)
                    first_round = n0 == 0
                    for r in range(layer.out_size):
                        for c in range(layer.out_size):
                            # Partial-sum read-back when accumulating a later
                            # input-map tile onto stored partials.
                            if not first_round:
                                trace.neuron_buffer_partial_reads += m_hi - m0
                            acc = np.zeros(m_hi - m0)
                            for i in range(k):
                                for j in range(k):
                                    trace.cycles += 1
                                    neurons = padded[
                                        n0:n_hi, r * stride + i, c * stride + j
                                    ]
                                    trace.neuron_buffer_reads += n_hi - n0
                                    trace.bus_transfers += n_hi - n0
                                    synapses = kernels[m0:m_hi, n0:n_hi, i, j]
                                    trace.kernel_buffer_reads += synapses.size
                                    products = synapses * neurons[np.newaxis, :]
                                    acc += products.sum(axis=1)
                                    trace.mac_ops += synapses.size
                                    trace.register_accesses += 2 * (m_hi - m0)
                            out[m0:m_hi, r, c] += acc
                            trace.neuron_buffer_writes += m_hi - m0
            if tracer.enabled:
                span.set_cycles(trace.cycles)
                span.add_counters(trace.as_dict())
        return out, trace
