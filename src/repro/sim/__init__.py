"""Functional cycle-level simulators validating each dataflow's numerics."""

from repro.sim.analytic import (
    analytic_flexflow_trace,
    analytic_mapping2d_trace,
    analytic_systolic_trace,
    analytic_tiling_trace,
)
from repro.sim.batch import (
    FactorBatch,
    LayerBatch,
    TraceBatch,
    batch_flexflow_traces,
    batch_mapping2d_traces,
    batch_systolic_traces,
    batch_tiling_traces,
)
from repro.sim.export import (
    compare_runs,
    load_run,
    network_result_to_dict,
    network_result_to_json,
    sim_trace_to_dict,
)
from repro.sim.flexflow_sim import CoordStore, FlexFlowFunctionalSim
from repro.sim.mapping2d_sim import Mapping2DFunctionalSim
from repro.sim.network_sim import FlexFlowNetworkSim, NetworkSimResult
from repro.sim.pooling_sim import PoolingUnitSim
from repro.sim.systolic_sim import SystolicFunctionalSim
from repro.sim.tile_engine import TileEngine
from repro.sim.tiling_sim import TilingFunctionalSim
from repro.sim.trace import SimTrace

__all__ = [
    "analytic_flexflow_trace",
    "analytic_mapping2d_trace",
    "analytic_systolic_trace",
    "analytic_tiling_trace",
    "batch_flexflow_traces",
    "batch_mapping2d_traces",
    "batch_systolic_traces",
    "batch_tiling_traces",
    "FactorBatch",
    "LayerBatch",
    "TraceBatch",
    "CoordStore",
    "FlexFlowFunctionalSim",
    "FlexFlowNetworkSim",
    "NetworkSimResult",
    "Mapping2DFunctionalSim",
    "PoolingUnitSim",
    "SystolicFunctionalSim",
    "TileEngine",
    "TilingFunctionalSim",
    "SimTrace",
    "network_result_to_dict",
    "network_result_to_json",
    "sim_trace_to_dict",
    "load_run",
    "compare_runs",
]
