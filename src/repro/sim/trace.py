"""Event counters shared by the functional simulators.

The analytical accelerator models *predict* event counts; the functional
simulators *observe* them while computing real values.  Integration tests
compare the two, which is how the traffic model earns its Figure 17
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.power import ActivityCounts


@dataclass
class SimTrace:
    """Mutable event counters collected during a functional simulation."""

    cycles: int = 0
    mac_ops: int = 0
    neuron_buffer_reads: int = 0
    neuron_buffer_writes: int = 0
    neuron_buffer_partial_reads: int = 0
    kernel_buffer_reads: int = 0
    local_store_reads: int = 0
    local_store_writes: int = 0
    fifo_accesses: int = 0
    register_accesses: int = 0
    bus_transfers: int = 0

    def to_activity_counts(self) -> ActivityCounts:
        """Freeze into the power model's record (PE-activity fields that
        the functional sims do not track stay at their observed values)."""
        return ActivityCounts(
            cycles=self.cycles,
            mac_ops=self.mac_ops,
            active_pe_cycles=self.mac_ops,
            neuron_buffer_reads=self.neuron_buffer_reads,
            neuron_buffer_writes=self.neuron_buffer_writes,
            neuron_buffer_partial_reads=self.neuron_buffer_partial_reads,
            kernel_buffer_reads=self.kernel_buffer_reads,
            local_store_reads=self.local_store_reads,
            local_store_writes=self.local_store_writes,
            fifo_accesses=self.fifo_accesses,
            register_accesses=self.register_accesses,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "cycles": self.cycles,
            "mac_ops": self.mac_ops,
            "neuron_buffer_reads": self.neuron_buffer_reads,
            "neuron_buffer_writes": self.neuron_buffer_writes,
            "neuron_buffer_partial_reads": self.neuron_buffer_partial_reads,
            "kernel_buffer_reads": self.kernel_buffer_reads,
            "local_store_reads": self.local_store_reads,
            "local_store_writes": self.local_store_writes,
            "fifo_accesses": self.fifo_accesses,
            "register_accesses": self.register_accesses,
            "bus_transfers": self.bus_transfers,
        }
