"""Closed-form analytical engine: exact counters without executing MACs.

The loop-nest structure each dataflow imposes makes every
:class:`~repro.sim.trace.SimTrace` counter a *computable function* of the
layer shape and the schedule parameters — the observation behind
analytical DSE tools like Timeloop and MAESTRO.  This module derives those
functions for all four simulated architectures and returns traces that are
**bit-identical** to what the cycle simulators observe (the equivalence
suite in ``tests/sim/test_analytic.py`` pins this against the tile engine
and all three baseline simulators).

For FlexFlow most counters collapse by unique decomposition — every output
coordinate ``(m, r, c)`` lands in exactly one tile row, and every input
coordinate ``(n, i, j)`` in exactly one step column — so::

    cycles             = outer_iterations          (one tile per cycle)
    mac_ops            = M * N * S^2 * K^2         (= layer.macs)
    local_store_reads  = 2 * mac_ops               (neuron + synapse per MAC)
    register_accesses  = 2 * f_in * M * S^2        (accumulator rd+wr per cycle)
    neuron_buffer_writes = M * S^2                 (one per output neuron)

The two capacity-dependent quantities need more care:

* **kernel store** — a PE's kernel touch set is identical in every tile of
  an output-map group (the coordinates contain no ``r0``/``c0`` term) and
  disjoint across groups, and every participating PE row is active in the
  group's first spatial tile.  The circular store therefore behaves
  dichotomously: if the ``L`` per-tile touches fit (``L <= W``) they miss
  exactly once per group, otherwise the cyclic access pattern thrashes and
  *every* touch misses.  Both branches are closed-form.
* **neuron store** — sliding-window reuse across spatial tiles is the one
  genuinely history-dependent behaviour, so it is *replayed* — but over a
  compressed state space: neuron coordinates carry no ``dm`` term, so the
  ``Tm * Tr * Tc`` PE rows collapse to ``Tr * Tc`` representative classes,
  and every output-map group presents the identical tile stream, so the
  replay runs group-by-group until the store state (a capacity-clipped
  push-slack signature) reaches its steady state and the remaining groups
  are extrapolated exactly.  The replay reuses the tile engine's
  fixed-point miss resolver and chunks its state tables to
  :data:`REPLAY_BUDGET_BYTES`.

The three baseline dataflows (Systolic, 2D-Mapping, Tiling) have fully
static schedules, so their traces are pure arithmetic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dataflow.unrolling import UnrollingFactors, ceil_div
from repro.errors import SpecificationError
from repro.nn.layers import ConvLayer
from repro.sim.tile_engine import _NEVER, TileEngine
from repro.sim.trace import SimTrace

#: Memory budget for one neuron-replay state chunk (last-push table plus
#: its signature copies).  Tests shrink this to force multi-chunk runs.
REPLAY_BUDGET_BYTES = 64 * 1024 * 1024


def _ceil_counts(extent: int, offsets: np.ndarray, step: int) -> np.ndarray:
    """Vectorized ``ceil(max(0, extent - offset) / step)``.

    Counts how many of the bases ``0, step, 2*step, ...`` keep
    ``base + offset < extent`` — the number of tiles (or steps) in which a
    PE at that offset holds a valid coordinate.
    """
    return -(-np.maximum(extent - offsets, 0) // step)


# -- FlexFlow -----------------------------------------------------------------


def analytic_flexflow_trace(
    layer: ConvLayer,
    factors: UnrollingFactors,
    *,
    neuron_store_words: int,
    kernel_store_words: int,
) -> SimTrace:
    """Exact :class:`SimTrace` of the FlexFlow functional simulator.

    ``factors`` must satisfy Eq. 1 for ``layer`` (callers run
    ``factors.check`` first, as the simulators do).  The trace depends only
    on the layer shape, the factors, and the two store capacities — it is
    independent of the input values, the PE grid steering, and any
    permanent-fault mask (a mask changes *which* physical PEs execute, not
    what they execute).
    """
    f = factors
    m_total, n_total = layer.out_maps, layer.in_maps
    s_total, k_total = layer.out_size, layer.kernel

    # Column classes (dn, di, dj): l_col counts the steps at which the
    # column holds a valid input coordinate — constant across tiles.
    col_idx = np.arange(f.row_occupancy)
    dn, rest = np.divmod(col_idx, f.ti * f.tj)
    di, dj = np.divmod(rest, f.tj)
    l_col = (
        _ceil_counts(n_total, dn, f.tn)
        * _ceil_counts(k_total, di, f.ti)
        * _ceil_counts(k_total, dj, f.tj)
    )

    # Row offset classes (dr, dc): nat counts the spatial tiles in which
    # the row holds a valid output coordinate.
    rc_idx = np.arange(f.tr * f.tc)
    dr, dc = np.divmod(rc_idx, f.tc)
    nat = _ceil_counts(s_total, dr, f.tr) * _ceil_counts(s_total, dc, f.tc)
    n_spatial = ceil_div(s_total, f.tr) * ceil_div(s_total, f.tc)

    f_in = f.input_iterations(layer)
    trace = SimTrace()
    trace.cycles = f.outer_iterations(layer)
    trace.mac_ops = layer.macs
    trace.local_store_reads = 2 * layer.macs
    trace.register_accesses = 2 * f_in * m_total * s_total * s_total
    trace.neuron_buffer_writes = m_total * s_total * s_total

    # Kernel store dichotomy.  Fits (l <= W): the group's first spatial
    # tile misses all l words in lockstep across the group's rows — one
    # bus word per (step, dm, column), one store write per PE — and every
    # later tile hits.  Thrashes (l > W): the FIFO evicts each word before
    # its next cyclic touch, so every touch of every active tile misses;
    # the bus sees one word per (step, dm, column) in *every* tile because
    # the (dr, dc) = (0, 0) row participates in all of them.  Summing the
    # per-group valid dm counts over all groups gives exactly M.
    thrash = l_col > kernel_store_words
    kernel_bus = int(
        m_total * np.where(thrash, l_col * n_spatial, l_col).sum()
    )
    kernel_misses = int(
        m_total
        * np.where(
            thrash[None, :],
            l_col[None, :] * nat[:, None],
            l_col[None, :] * np.minimum(nat[:, None], 1),
        ).sum()
    )

    neuron_bus, neuron_misses = _neuron_store_replay(
        layer, f, neuron_store_words, dn=dn, di=di, dj=dj, dr=dr, dc=dc
    )

    trace.kernel_buffer_reads = kernel_bus
    trace.neuron_buffer_reads = neuron_bus
    trace.bus_transfers = kernel_bus + neuron_bus
    trace.local_store_writes = kernel_misses + neuron_misses
    return trace


def _neuron_store_replay(
    layer: ConvLayer,
    f: UnrollingFactors,
    capacity: int,
    *,
    dn: np.ndarray,
    di: np.ndarray,
    dj: np.ndarray,
    dr: np.ndarray,
    dc: np.ndarray,
) -> Tuple[int, int]:
    """``(bus_words, store_writes)`` for the neuron stores, exactly.

    One representative PE is replayed per ``((dr, dc), column)`` class:
    neuron coordinates carry no ``dm`` term, so all valid rows of a group
    that share ``(dr, dc)`` evolve identically — the bus ("any row of the
    column misses") reduces to the representative's misses, and the store
    writes multiply by the group's valid ``dm`` count.  Groups present
    identical tile streams, so the group loop stops as soon as the
    capacity-clipped state signature stops changing and the remaining
    groups contribute the converged per-group miss count.
    """
    m_total, n_total = layer.out_maps, layer.in_maps
    s_total, k_total = layer.out_size, layer.kernel
    stride = layer.stride
    padded_size = layer.in_size + layer.padding
    neuron_space = n_total * padded_size * padded_size
    n_groups = ceil_div(m_total, f.tm)
    group_sizes = np.minimum(f.tm, m_total - f.tm * np.arange(n_groups))

    # Inner-cycle bases in reference loop order, as in the tile engine.
    steps = np.stack(
        np.meshgrid(
            np.arange(0, n_total, f.tn),
            np.arange(0, k_total, f.ti),
            np.arange(0, k_total, f.tj),
            indexing="ij",
        ),
        axis=-1,
    ).reshape(-1, 3)
    n_tc = steps[:, 0:1] + dn[None, :]
    i_tc = steps[:, 1:2] + di[None, :]
    j_tc = steps[:, 2:3] + dj[None, :]
    col_ok = (n_tc < n_total) & (i_tc < k_total) & (j_tc < k_total)
    base_tc = n_tc * (padded_size * padded_size) + i_tc * padded_size + j_tc

    n_rc = len(dr)
    n_cols = col_ok.shape[1]
    n_classes = n_rc * n_cols
    # Four state-sized arrays live at once (table, two signatures, coords).
    chunk = max(1, REPLAY_BUDGET_BYTES // (4 * 8 * neuron_space))

    bus = 0
    writes = 0
    for start in range(0, n_classes, chunk):
        cls = np.arange(start, min(start + chunk, n_classes))
        rc_i, c_i = np.divmod(cls, n_cols)
        n_cls = len(cls)
        last_push = np.full((n_cls, 1, neuron_space), _NEVER)
        count = np.zeros((n_cls, 1), dtype=np.int64)
        r_ix = np.arange(n_cls)[None, :, None]
        c_ix = np.zeros((1, 1, 1), dtype=np.int64)
        coords_base = base_tc[:, c_i]  # (T, n_cls)
        act_cols = col_ok[:, c_i]
        cls_dr, cls_dc = dr[rc_i], dc[rc_i]

        def run_group() -> int:
            misses = 0
            for r0 in range(0, s_total, f.tr):
                row_r = r0 + cls_dr
                for c0 in range(0, s_total, f.tc):
                    col_c = c0 + cls_dc
                    row_ok = (row_r < s_total) & (col_c < s_total)
                    active = (act_cols & row_ok[None, :])[:, :, None]
                    if not active.any():
                        continue
                    offset = row_r * (stride * padded_size) + col_c * stride
                    coords = np.where(
                        active, (coords_base + offset[None, :])[:, :, None], 0
                    )
                    miss, _ = TileEngine._resolve_misses(
                        last_push, count, coords, active, capacity,
                        r_ix, c_ix,
                    )
                    misses += int(miss.sum())
            return misses

        def signature() -> np.ndarray:
            # Push slacks clipped at the capacity: slacks >= capacity all
            # mean "not resident", so clipping makes the signature a
            # sufficient statistic for all future behaviour.
            return np.minimum(count[:, :, None] - last_push, capacity)

        sig_prev = signature()
        m_hist: List[int] = []
        for _ in range(n_groups):
            m_hist.append(run_group())
            sig_now = signature()
            if np.array_equal(sig_now, sig_prev):
                break  # steady state: every later group repeats this one
            sig_prev = sig_now
        replayed = len(m_hist)
        bus += sum(m_hist) + (n_groups - replayed) * m_hist[-1]
        writes += int((np.asarray(m_hist) * group_sizes[:replayed]).sum())
        writes += m_hist[-1] * int(group_sizes[replayed:].sum())
    return bus, writes


# -- baseline dataflows -------------------------------------------------------


def analytic_systolic_trace(layer: ConvLayer) -> SimTrace:
    """Exact trace of :class:`~repro.sim.systolic_sim.SystolicFunctionalSim`.

    The raster broadcast visits every padded input position once per
    ``(m, n)`` pair plus ``K`` drain rows; every injected flight crosses
    all ``K - 1`` inter-row FIFOs (push + pop); each valid output window
    accumulates its full ``K^2`` products.
    """
    if layer.stride != 1:
        raise SpecificationError("systolic dataflow models stride-1 layers")
    k = layer.kernel
    side = layer.in_size + layer.padding  # padded image height == width
    pairs = layer.out_maps * layer.in_maps
    broadcasts = pairs * side * side
    trace = SimTrace()
    trace.cycles = pairs * (side + k) * side
    trace.neuron_buffer_reads = broadcasts
    trace.bus_transfers = broadcasts
    trace.neuron_buffer_writes = pairs * layer.out_size * layer.out_size
    trace.fifo_accesses = 2 * (k - 1) * broadcasts
    trace.mac_ops = layer.macs
    trace.register_accesses = 2 * layer.macs
    return trace


def _block_shapes(out_size: int, block: int) -> List[Tuple[int, int]]:
    """``(size, multiplicity)`` of the 1-D block decomposition of ``out_size``."""
    full, rem = divmod(out_size, block)
    shapes = []
    if full:
        shapes.append((block, full))
    if rem:
        shapes.append((rem, 1))
    return shapes


def analytic_mapping2d_trace(layer: ConvLayer, block_size: int) -> SimTrace:
    """Exact trace of :class:`~repro.sim.mapping2d_sim.Mapping2DFunctionalSim`.

    Every ``(m, block, n)`` run costs ``K^2`` cycles with one synapse
    broadcast each; the neuron window pays a full load once, one fresh
    column per in-row shift, and a partial reload at each kernel-row
    boundary where ``(rows - 1) * (cols - K + 1)`` neurons shift through
    the per-PE FIFOs instead.
    """
    if block_size <= 0:
        raise SpecificationError(
            f"block_size must be positive, got {block_size}"
        )
    if layer.stride != 1:
        raise SpecificationError("2D-Mapping dataflow models stride-1 layers")
    k = layer.kernel
    m_total, n_total = layer.out_maps, layer.in_maps
    shapes = _block_shapes(layer.out_size, block_size)
    trace = SimTrace()
    for rows, row_mult in shapes:
        for cols, col_mult in shapes:
            blocks = m_total * row_mult * col_mult
            runs = blocks * n_total  # one _run_block per input map
            reused = (rows - 1) * max(0, cols - (k - 1))
            trace.cycles += runs * k * k
            trace.kernel_buffer_reads += runs * k * k
            trace.bus_transfers += runs * k * k
            trace.mac_ops += runs * k * k * rows * cols
            trace.register_accesses += 2 * runs * k * k * rows * cols
            trace.neuron_buffer_reads += runs * (
                rows * cols  # initial window load
                + k * (k - 1) * rows  # fresh column per in-row shift
                + (k - 1) * (rows * cols - reused)  # row-boundary reload
            )
            trace.fifo_accesses += runs * (
                2 * k * (k - 1) * rows * (cols - 1)  # in-row shifts
                + 2 * (k - 1) * reused  # row-boundary window reuse
            )
            trace.neuron_buffer_writes += blocks * rows * cols
    return trace


def analytic_tiling_trace(layer: ConvLayer, tm: int, tn: int) -> SimTrace:
    """Exact trace of :class:`~repro.sim.tiling_sim.TilingFunctionalSim`.

    The schedule is fully dense — ``⌈M/Tm⌉ * ⌈N/Tn⌉ * S^2 * K^2`` cycles
    with zero synapse reuse — so every counter is a closed product; the
    partial-sum round-trips appear once per output position per non-first
    input-map round.
    """
    if tm <= 0 or tn <= 0:
        raise SpecificationError("tile factors must be positive")
    s2 = layer.out_size * layer.out_size
    k2 = layer.kernel * layer.kernel
    m_total, n_total = layer.out_maps, layer.in_maps
    m_rounds = ceil_div(m_total, tm)
    n_rounds = ceil_div(n_total, tn)
    trace = SimTrace()
    trace.cycles = m_rounds * n_rounds * s2 * k2
    trace.neuron_buffer_reads = m_rounds * n_total * s2 * k2
    trace.bus_transfers = m_rounds * n_total * s2 * k2
    trace.kernel_buffer_reads = m_total * n_total * s2 * k2
    trace.mac_ops = layer.macs
    trace.register_accesses = 2 * m_total * n_rounds * s2 * k2
    trace.neuron_buffer_partial_reads = m_total * (n_rounds - 1) * s2
    trace.neuron_buffer_writes = m_total * n_rounds * s2
    return trace
