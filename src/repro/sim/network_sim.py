"""Full-network functional simulation on the FlexFlow machine.

Chains the cycle-level simulators through a whole CNN: CONV layers run on
the :class:`~repro.sim.flexflow_sim.FlexFlowFunctionalSim` PE array with
the network's jointly-optimized unrolling factors, POOL layers on the 1-D
:class:`~repro.sim.pooling_sim.PoolingUnitSim`, JOIN layers re-group maps,
and FC layers execute on the PE array via the standard FC-as-1x1-CONV
reduction.  The final activations are compared against the golden
whole-network runner (:mod:`repro.nn.execution`) — an end-to-end proof
that the mapping, grouping, and addressing machinery compose across
layers, not just within one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.config import ArchConfig
from repro.dataflow.mapper import map_network
from repro.errors import SpecificationError
from repro.nn.execution import make_network_inputs, run_join_layer
from repro.nn.layers import ConvLayer, FCLayer, JoinLayer, PoolLayer
from repro.nn.network import Network
from repro.nn.reference import make_fc_weights, make_kernels
from repro.sim.flexflow_sim import FlexFlowFunctionalSim
from repro.sim.pooling_sim import PoolingUnitSim
from repro.sim.trace import SimTrace


@dataclass
class NetworkSimResult:
    """Outcome of a full-network functional run."""

    network_name: str
    final_output: np.ndarray
    activations: Dict[str, np.ndarray]
    conv_trace: SimTrace
    pool_trace: SimTrace
    layer_cycles: Dict[str, int]

    @property
    def total_conv_cycles(self) -> int:
        return self.conv_trace.cycles


class FlexFlowNetworkSim:
    """Execute a whole network, layer by layer, on the functional machine."""

    def __init__(self, config: Optional[ArchConfig] = None) -> None:
        self.config = config or ArchConfig(array_dim=8)

    def run_network(
        self, network: Network, inputs: Optional[np.ndarray] = None
    ) -> NetworkSimResult:
        current = inputs if inputs is not None else make_network_inputs(network)
        if tuple(current.shape) != network.input_spec.shape:
            raise SpecificationError(
                f"{network.name}: inputs shape {current.shape} !="
                f" {network.input_spec.shape}"
            )
        dim = self.config.array_dim
        if network.conv_layers:
            mapping = map_network(network, dim).by_layer_name()
        else:
            mapping = {}
        pooling = PoolingUnitSim(num_alus=dim)

        conv_trace = SimTrace()
        pool_trace = SimTrace()
        activations: Dict[str, np.ndarray] = {}
        layer_cycles: Dict[str, int] = {}

        for layer in network.layers:
            if isinstance(layer, ConvLayer):
                factors = mapping[layer.name].factors
                sim = FlexFlowFunctionalSim(self.config, factors=factors)
                kernels = make_kernels(layer)
                current, trace = sim.run_layer(layer, current, kernels)
                _merge(conv_trace, trace)
                layer_cycles[layer.name] = trace.cycles
            elif isinstance(layer, PoolLayer):
                current, trace = pooling.run_layer(layer, current)
                _merge(pool_trace, trace)
                layer_cycles[layer.name] = trace.cycles
            elif isinstance(layer, JoinLayer):
                current = run_join_layer(layer, current)
                layer_cycles[layer.name] = 0
            elif isinstance(layer, FCLayer):
                current, cycles = self._run_fc(layer, current, conv_trace)
                layer_cycles[layer.name] = cycles
            else:  # pragma: no cover
                raise SpecificationError(
                    f"unsupported layer {type(layer).__name__}"
                )
            activations[layer.name] = current
        return NetworkSimResult(
            network_name=network.name,
            final_output=current,
            activations=activations,
            conv_trace=conv_trace,
            pool_trace=pool_trace,
            layer_cycles=layer_cycles,
        )

    def _run_fc(
        self, layer: FCLayer, inputs: np.ndarray, conv_trace: SimTrace
    ) -> Tuple[np.ndarray, int]:
        """FC on the PE array via the 1x1-CONV reduction.

        The equivalent CONV has N = in_neurons 1x1 input maps and
        M = out_neurons 1x1 outputs; its kernel tensor is the FC weight
        matrix reshaped, so numerics match :func:`run_fc_layer` exactly.
        """
        conv = layer.as_conv()
        weights = make_fc_weights(layer)
        kernels = weights.reshape(layer.out_neurons, layer.in_neurons, 1, 1)
        conv_inputs = inputs.reshape(layer.in_neurons, 1, 1)
        sim = FlexFlowFunctionalSim(self.config)
        outputs, trace = sim.run_layer(conv, conv_inputs, kernels)
        _merge(conv_trace, trace)
        return outputs.reshape(layer.out_neurons), trace.cycles


def _merge(total: SimTrace, part: SimTrace) -> None:
    for field in vars(part):
        setattr(total, field, getattr(total, field) + getattr(part, field))
