"""Vectorized fast-path for the FlexFlow functional simulator.

:class:`TileEngine` executes the same computation as the per-PE reference
loop in :mod:`repro.sim.flexflow_sim` — one unrolled tile per cycle, RA/RS
broadcast sharing, capacity-limited circular local stores — but processes
one *output tile* (all of its ``f_in`` inner cycles) per step as batched
NumPy gathers, products, and scatter updates instead of per-PE Python
loops.  It is an executable replacement, not an approximation:

* **outputs** are bit-identical: within each cycle the adder-tree sum is
  accumulated column by column in PE-column order, and the per-row
  accumulator adds one tree sum per cycle in cycle order — the exact
  float-addition sequence of the reference loop;
* **cycle count** is asserted equal to ``factors.outer_iterations(layer)``
  (the Section 4.2 one-tile-per-cycle invariant);
* **traffic counters** (buffer reads, bus transfers, local-store
  reads/writes) are exact, including capacity evictions of the per-PE
  circular stores.

The local stores need no materialized ring buffer.  A circular store of
``W`` words pushes only on a miss, so a coordinate is resident iff fewer
than ``W`` pushes happened since its own last push — residency is a pure
function of a per-PE ``last_push`` sequence table and a push counter.
Within one output tile every PE touches each coordinate at most once, so
the only sequential hazard is an intra-tile eviction: a word resident at
tile start can be overwritten by the tile's own pushes before its use.
Misses therefore satisfy a monotone fixed point —

    miss(t)  iff  pushes_before(t) >= W - (push_count - last_push)

with ``pushes_before`` a cumulative sum of earlier misses — which is
solved by iterating from the optimistic solution (no intra-tile
evictions) until stable; each round only adds misses, so it terminates.

Memory for the sequence tables is ``active_PEs x coordinate_space``; when
that exceeds :data:`TileEngine.MAX_TABLE_BYTES` the engine reports itself
infeasible and :class:`~repro.sim.flexflow_sim.FlexFlowFunctionalSim`
falls back to the reference loop.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.config import ArchConfig
from repro.dataflow.grouping import GroupGeometry
from repro.dataflow.unrolling import UnrollingFactors
from repro.errors import SimulationError
from repro.faults.mask import LiveGrid
from repro.faults.model import FaultModel, apply_flip, transient_flip
from repro.nn.layers import ConvLayer
from repro.obs.tracer import Tracer, counter_delta, current_tracer
from repro.sim.trace import SimTrace

#: Live bit-flip overrides: ``(row, col, coord) -> (push_sequence, value)``.
_Overrides = Dict[Tuple[int, int, int], Tuple[int, float]]

#: ``last_push`` initial value: far enough below zero that no coordinate
#: appears resident before its first push, for any realistic capacity.
_NEVER = np.int64(np.iinfo(np.int64).min // 2)


class TileEngine:
    """Batched-NumPy execution of one CONV layer on the FlexFlow array.

    Args:
        config: the architecture (array dimension, local-store capacities).
        layer: the CONV layer to execute.
        factors: the unrolling factors (must already satisfy Eq. 1).
    """

    #: Upper bound on the combined last-push table footprint, in bytes.
    #: Beyond this the engine is infeasible and callers should use the
    #: per-PE reference loop (such layers are far outside the functional
    #: simulator's practical envelope anyway).
    MAX_TABLE_BYTES = 256 * 1024 * 1024

    def __init__(
        self,
        config: ArchConfig,
        layer: ConvLayer,
        factors: UnrollingFactors,
        *,
        grid: Optional[LiveGrid] = None,
        fault_model: Optional[FaultModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.layer = layer
        self.factors = factors
        self.geometry = GroupGeometry(factors, config.array_dim)
        self.grid = grid
        self.fault_model = fault_model
        self.tracer = tracer

    # -- feasibility ---------------------------------------------------------

    @classmethod
    def table_bytes(
        cls, config: ArchConfig, layer: ConvLayer, factors: UnrollingFactors
    ) -> int:
        """Footprint of the per-PE last-push tables for this layer."""
        rows = factors.column_occupancy
        cols = factors.row_occupancy
        padded_size = layer.in_size + layer.padding
        neuron_space = layer.in_maps * padded_size * padded_size
        kernel_space = (
            layer.out_maps * layer.in_maps * layer.kernel * layer.kernel
        )
        return rows * cols * (neuron_space + kernel_space) * 8

    @classmethod
    def is_feasible(
        cls, config: ArchConfig, layer: ConvLayer, factors: UnrollingFactors
    ) -> bool:
        """Whether the vectorized engine can run this layer in memory."""
        return cls.table_bytes(config, layer, factors) <= cls.MAX_TABLE_BYTES

    # -- execution -----------------------------------------------------------

    def run(
        self, padded: np.ndarray, kernels: np.ndarray
    ) -> Tuple[np.ndarray, SimTrace]:
        """Execute the layer on pre-padded inputs; returns ``(outputs, trace)``."""
        layer, f, geo = self.layer, self.factors, self.geometry
        stride = layer.stride
        m_total, s_total, k_total = layer.out_maps, layer.out_size, layer.kernel
        n_total = layer.in_maps
        rows, cols = geo.active_rows, geo.active_cols
        padded_size = padded.shape[1]

        # Row/column offset decompositions (Section 4.3 index functions).
        row_idx = np.arange(rows)
        dm, rest = np.divmod(row_idx, f.tr * f.tc)
        dr, dc = np.divmod(rest, f.tc)
        col_idx = np.arange(cols)
        dn, rest = np.divmod(col_idx, f.ti * f.tj)
        di, dj = np.divmod(rest, f.tj)

        # Inner-cycle bases (n0, i0, j0) in reference loop order.
        n0 = np.arange(0, n_total, f.tn)
        i0 = np.arange(0, k_total, f.ti)
        j0 = np.arange(0, k_total, f.tj)
        steps = np.stack(
            np.meshgrid(n0, i0, j0, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        n_steps = len(steps)  # f_in: inner cycles per output tile

        # Per-(cycle, col) coordinates and validity — tile-independent.
        n_tc = steps[:, 0:1] + dn[None, :]  # (T, C)
        i_tc = steps[:, 1:2] + di[None, :]
        j_tc = steps[:, 2:3] + dj[None, :]
        col_ok = (n_tc < n_total) & (i_tc < k_total) & (j_tc < k_total)
        cols_per_step = col_ok.sum(axis=1)
        # Flat-coordinate bases: tile-dependent parts are added per tile.
        neuron_base_tc = n_tc * (padded_size * padded_size) + i_tc * padded_size + j_tc
        kernel_base_tc = (n_tc * k_total + i_tc) * k_total + j_tc

        padded_flat = padded.reshape(-1)
        kernels_flat = kernels.reshape(-1)

        # Per-PE circular-store state: last-push sequence numbers + counts.
        neuron_space = n_total * padded_size * padded_size
        kernel_space = m_total * n_total * k_total * k_total
        if self.table_bytes(self.config, layer, f) > self.MAX_TABLE_BYTES:
            raise SimulationError(
                f"{layer.name}: last-push tables exceed"
                f" {self.MAX_TABLE_BYTES} bytes; use the reference engine"
            )
        neuron_last = np.full((rows, cols, neuron_space), _NEVER)
        kernel_last = np.full((rows, cols, kernel_space), _NEVER)
        neuron_count = np.zeros((rows, cols), dtype=np.int64)
        kernel_count = np.zeros((rows, cols), dtype=np.int64)
        w_neuron = self.config.neuron_store_words
        w_kernel = self.config.kernel_store_words
        r_ix = row_idx[None, :, None]  # PE-axis index helpers for gathers
        c_ix = col_idx[None, None, :]

        # Transient-fault state (inactive runs never touch any of it).
        flips_active = (
            self.fault_model is not None
            and self.fault_model.has_transient_faults
        )
        neuron_over: _Overrides = {}
        kernel_over: _Overrides = {}
        if self.grid is not None:
            phys_rows = [self.grid.physical_row(r) for r in range(rows)]
            phys_cols = [self.grid.physical_col(c) for c in range(cols)]
        else:
            phys_rows = list(range(rows))
            phys_cols = list(range(cols))

        outputs = np.zeros((m_total, s_total, s_total))
        outputs_flat = outputs.reshape(-1)
        trace = SimTrace()
        tracer = self.tracer if self.tracer is not None else current_tracer()

        for m0 in range(0, m_total, f.tm):
            # One span per output-map tile group, with the group's exact
            # counter deltas — the same boundaries the reference loop
            # traces, so both engines' span trees compare equal.
            with tracer.span(
                f"group:m0={m0}", category="sim.flexflow"
            ) as group_span:
                before = trace.as_dict() if tracer.enabled else None
                m_r = m0 + dm  # (R,) per-row output coordinates
                kernel_m = m_r * (n_total * k_total * k_total)
                for r0 in range(0, s_total, f.tr):
                    r_r = r0 + dr
                    for c0 in range(0, s_total, f.tc):
                        c_r = c0 + dc
                        trace.cycles += n_steps
                        row_ok = (m_r < m_total) & (r_r < s_total) & (c_r < s_total)
                        n_rows_ok = int(row_ok.sum())
                        if n_rows_ok == 0:
                            continue
                        active = row_ok[None, :, None] & col_ok[:, None, :]

                        # Coordinates for every (cycle, row, col) of this tile.
                        neuron_tile = (r_r * stride) * padded_size + c_r * stride
                        neuron_flat = np.where(
                            active,
                            neuron_base_tc[:, None, :] + neuron_tile[None, :, None],
                            0,
                        )
                        kernel_flat = np.where(
                            active,
                            kernel_base_tc[:, None, :] + kernel_m[None, :, None],
                            0,
                        )

                        # Demand-fill both stores (misses, pushes, bus words).
                        neuron_miss, neuron_seq = self._resolve_misses(
                            neuron_last, neuron_count, neuron_flat, active,
                            w_neuron, r_ix, c_ix,
                        )
                        kernel_miss, kernel_seq = self._resolve_misses(
                            kernel_last, kernel_count, kernel_flat, active,
                            w_kernel, r_ix, c_ix,
                        )
                        if flips_active:
                            self._push_flips(
                                "neuron", neuron_miss, neuron_seq, neuron_flat,
                                padded_flat, neuron_over, phys_rows, phys_cols,
                            )
                            self._push_flips(
                                "kernel", kernel_miss, kernel_seq, kernel_flat,
                                kernels_flat, kernel_over, phys_rows, phys_cols,
                            )
                        n_neuron_miss = int(neuron_miss.sum())
                        n_kernel_miss = int(kernel_miss.sum())
                        # Bus sharing (RA/RS): a word already driven this cycle
                        # is free for every other PE on that bus.  A neuron word
                        # is shared by the rows that differ only in their dm
                        # offset (the coordinate has no m dependence); a kernel
                        # word is shared by all (Tr*Tc) rows of its (m % Tm)
                        # group.  Any other row pair touches distinct words.
                        by_group = (n_steps, f.tm, f.tr * f.tc, cols)
                        neuron_bus = int(
                            neuron_miss.reshape(by_group).any(axis=1).sum()
                        )
                        kernel_bus = int(
                            kernel_miss.reshape(by_group).any(axis=2).sum()
                        )
                        trace.neuron_buffer_reads += neuron_bus
                        trace.kernel_buffer_reads += kernel_bus
                        trace.bus_transfers += neuron_bus + kernel_bus
                        trace.local_store_writes += n_neuron_miss + n_kernel_miss

                        macs = n_rows_ok * int(cols_per_step.sum())
                        trace.mac_ops += macs
                        trace.local_store_reads += 2 * macs
                        trace.register_accesses += 2 * n_steps * n_rows_ok

                        # Adder trees and accumulators, in the reference
                        # float-addition order: columns left to right within a
                        # cycle, cycles first to last within the tile.
                        neuron_vals = padded_flat[neuron_flat]
                        kernel_vals = kernels_flat[kernel_flat]
                        if flips_active:
                            self._apply_overrides(
                                neuron_over, neuron_last, neuron_count,
                                neuron_flat, active, neuron_vals, w_neuron,
                            )
                            self._apply_overrides(
                                kernel_over, kernel_last, kernel_count,
                                kernel_flat, active, kernel_vals, w_kernel,
                            )
                        products = np.where(active, neuron_vals * kernel_vals, 0.0)
                        tree = np.zeros((n_steps, rows))
                        for col in range(cols):
                            tree += products[:, :, col]
                        accumulators = np.zeros(rows)
                        for step in range(n_steps):
                            accumulators += tree[step]

                        out_flat = (m_r * s_total + r_r) * s_total + c_r
                        outputs_flat[out_flat[row_ok]] = accumulators[row_ok]
                        trace.neuron_buffer_writes += n_rows_ok
                if before is not None:
                    delta = counter_delta(before, trace.as_dict())
                    group_span.set_cycles(delta["cycles"])
                    group_span.add_counters(delta)

        expected = f.outer_iterations(layer)
        if trace.cycles != expected:
            raise SimulationError(
                f"{layer.name}: simulated {trace.cycles} cycles,"
                f" expected outer_iterations={expected}"
            )
        return outputs, trace

    @staticmethod
    def _resolve_misses(
        last_push: np.ndarray,
        push_count: np.ndarray,
        coords: np.ndarray,
        active: np.ndarray,
        capacity: int,
        r_ix: np.ndarray,
        c_ix: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Misses (and push sequences) for one store over one tile.

        ``coords`` and ``active`` are ``(T, R, C)``; a PE touches each of
        its coordinates at most once per tile, so the intra-tile eviction
        fixed point is monotone and the final scatter is conflict-free.
        Returns ``(miss, sequence)``; ``sequence`` is meaningful only at
        miss positions (a push's 1-based inclusive rank, the counter fed
        to the transient-fault hash).  Store state is updated in place.
        """
        slack = push_count[None, :, :] - last_push[r_ix, c_ix, coords]
        miss = active & (slack >= capacity)
        while True:
            pushes_before = np.cumsum(miss, axis=0) - miss
            grown = miss | (active & (slack + pushes_before >= capacity))
            if np.array_equal(grown, miss):
                break
            miss = grown
        # Push sequence numbers: rank within the tile, offset by the
        # pre-tile count (a push's own sequence is its inclusive rank).
        sequence = push_count[None, :, :] + np.cumsum(miss, axis=0)
        t_at, r_at, c_at = np.nonzero(miss)
        last_push[r_at, c_at, coords[t_at, r_at, c_at]] = sequence[t_at, r_at, c_at]
        push_count += miss.sum(axis=0)
        return miss, sequence

    # -- transient faults ----------------------------------------------------

    def _push_flips(
        self,
        kind: str,
        miss: np.ndarray,
        sequence: np.ndarray,
        coords: np.ndarray,
        source_flat: np.ndarray,
        overrides: _Overrides,
        phys_rows,
        phys_cols,
    ) -> None:
        """Decide bit flips for every push of one tile.

        Matches :class:`~repro.sim.flexflow_sim.CoordStore`'s push-time
        corruption: the hash keys on the physical PE, the flat data
        coordinate, and the push's 1-based sequence rank.  A clean re-push
        clears any stale override for the same word.
        """
        seed = self.fault_model.seed
        rate = self.fault_model.bitflip_rate
        t_at, r_at, c_at = np.nonzero(miss)
        for t, r, c in zip(t_at.tolist(), r_at.tolist(), c_at.tolist()):
            coord = int(coords[t, r, c])
            seq = int(sequence[t, r, c])
            bit = transient_flip(
                seed, kind, phys_rows[r], phys_cols[c], coord, seq, rate
            )
            key = (r, c, coord)
            if bit is None:
                overrides.pop(key, None)
            else:
                overrides[key] = (seq, apply_flip(float(source_flat[coord]), bit))

    @staticmethod
    def _apply_overrides(
        overrides: _Overrides,
        last_push: np.ndarray,
        push_count: np.ndarray,
        coords: np.ndarray,
        active: np.ndarray,
        values: np.ndarray,
        capacity: int,
    ) -> None:
        """Substitute corrupted store contents into this tile's reads.

        An override stands for "the store word last pushed with sequence
        ``seq`` holds ``value``"; it applies to a read exactly when that
        push is still the word's latest (``last_push == seq``).  Eviction
        does not clear ``last_push``, so a word corrupted at its push and
        evicted later in the same tile still delivers the corrupted value
        to its (earlier) read — application happens before pruning.
        Entries whose word has aged out of the circular store are pruned;
        a future touch re-pushes and re-rolls the flip.
        """
        if not overrides:
            return
        stale = []
        for (r, c, coord), (seq, value) in overrides.items():
            if last_push[r, c, coord] == seq:
                match = (coords[:, r, c] == coord) & active[:, r, c]
                hits = np.nonzero(match)[0]
                if hits.size:
                    values[hits[0], r, c] = value
                if push_count[r, c] - seq >= capacity:
                    stale.append((r, c, coord))
            else:
                stale.append((r, c, coord))
        for key in stale:
            del overrides[key]
