"""Functional simulation of the 1-D pooling unit.

Section 4's pooling unit is "a series of lightweight ALUs, subsampling
the immediate convolution results to reduce data transmission".  The
model: ``A`` ALUs (one per PE column by default) each reduce one pooling
window per ``window^2`` cycles, walking the output positions of every
map in row-major order.

The simulator computes real max/average pooling (validated against the
golden model) and reports cycles and ALU-op counts; the accelerator
models treat pooling as off-critical-path (it overlaps the next layer's
compute), so these cycles feed the overlap-validity check rather than
the performance results.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.nn.layers import PoolLayer
from repro.nn.reference import pool2d
from repro.sim.trace import SimTrace


class PoolingUnitSim:
    """Cycle-level functional model of the 1-D pooling unit."""

    def __init__(self, num_alus: int = 16) -> None:
        if num_alus <= 0:
            raise SpecificationError(f"num_alus must be positive, got {num_alus}")
        self.num_alus = num_alus

    def run_layer(
        self, layer: PoolLayer, inputs: np.ndarray
    ) -> Tuple[np.ndarray, SimTrace]:
        """Execute one POOL layer; returns ``(outputs, trace)``."""
        if tuple(inputs.shape) != layer.input_shape:
            raise SpecificationError(
                f"{layer.name}: inputs shape {inputs.shape} !="
                f" {layer.input_shape}"
            )
        trace = SimTrace()
        outputs = np.empty(layer.output_shape, dtype=inputs.dtype)
        stride = layer.stride
        window = layer.window
        positions = layer.maps * layer.out_size * layer.out_size

        # Cycle model: the ALU row processes up to `num_alus` windows in
        # parallel, each window costing window^2 element reads.
        batches = -(-positions // self.num_alus)
        trace.cycles += batches * window * window

        for channel in range(layer.maps):
            for r in range(layer.out_size):
                for c in range(layer.out_size):
                    r0, c0 = r * stride, c * stride
                    patch = inputs[channel, r0:r0 + window, c0:c0 + window]
                    trace.neuron_buffer_reads += patch.size
                    if layer.mode == "max":
                        outputs[channel, r, c] = patch.max()
                    else:
                        outputs[channel, r, c] = patch.mean()
                    trace.mac_ops += patch.size  # comparator/add ops
                    trace.neuron_buffer_writes += 1
        return outputs, trace


def verify_against_golden(layer: PoolLayer, inputs: np.ndarray) -> bool:
    """Convenience: does the unit match the golden pool for these inputs?"""
    outputs, _ = PoolingUnitSim().run_layer(layer, inputs)
    golden = pool2d(inputs, layer.window, layer.out_size, layer.mode)
    return bool(np.allclose(outputs, golden, atol=1e-12))
