"""Run-artifact export: save simulation/execution results as JSON.

Reproducibility plumbing: a functional-simulation or accelerator run can
be frozen to a JSON document (configuration + per-layer numbers + event
counters) and reloaded for comparison — the artifact a CI job or a paper
artifact-evaluation committee wants next to the code.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.accelerators.base import NetworkResult
from repro.arch.serialization import config_to_dict
from repro.errors import ConfigurationError
from repro.sim.trace import SimTrace

#: Schema version for forward compatibility.
SCHEMA_VERSION = 1


def network_result_to_dict(result: NetworkResult) -> Dict[str, Any]:
    """Freeze an accelerator run (config, per-layer rows, totals)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": result.kind,
        "network": result.network_name,
        "config": config_to_dict(result.config),
        "layers": [
            {
                "name": layer.layer.name,
                "cycles": layer.cycles,
                "utilization": layer.utilization,
                "macs": layer.macs,
                "buffer_words": layer.counts.buffer_words_total,
                "dram_words": layer.counts.dram_accesses,
            }
            for layer in result.layers
        ],
        "totals": {
            "cycles": result.total_cycles,
            "macs": result.total_macs,
            "utilization": result.overall_utilization,
            "gops": result.gops,
            "power_mw": result.power_mw,
            "energy_uj": result.energy_uj,
            "gops_per_watt": result.gops_per_watt,
            "buffer_words": result.buffer_traffic_words,
            "dram_accesses_per_op": result.dram_accesses_per_op,
        },
    }


def network_result_to_json(result: NetworkResult, *, indent: int = 2) -> str:
    return json.dumps(network_result_to_dict(result), indent=indent, sort_keys=True)


def sim_trace_to_dict(trace: SimTrace) -> Dict[str, Any]:
    """Freeze a functional-simulation trace's counters."""
    data = trace.as_dict()
    data["schema"] = SCHEMA_VERSION
    return data


def load_run(text: str) -> Dict[str, Any]:
    """Parse a frozen run, checking the schema version."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid run JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError("run JSON must be an object")
    if data.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported run schema {data.get('schema')!r};"
            f" expected {SCHEMA_VERSION}"
        )
    return data


def compare_runs(old: Dict[str, Any], new: Dict[str, Any], *, rel_tol: float = 1e-9) -> Dict[str, Any]:
    """Field-by-field diff of two frozen runs' totals.

    Returns ``{field: (old, new)}`` for every total that moved by more
    than ``rel_tol`` relatively — the regression check a CI pipeline runs
    against a committed baseline.
    """
    drifted: Dict[str, Any] = {}
    old_totals = old.get("totals", {})
    new_totals = new.get("totals", {})
    for field in sorted(set(old_totals) | set(new_totals)):
        a, b = old_totals.get(field), new_totals.get(field)
        if a is None or b is None:
            drifted[field] = (a, b)
            continue
        scale = max(abs(a), abs(b), 1e-30)
        if abs(a - b) / scale > rel_tol:
            drifted[field] = (a, b)
    return drifted
