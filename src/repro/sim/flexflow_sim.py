"""Functional cycle-level simulation of the FlexFlow PE array.

This simulator executes a CONV layer exactly the way Section 4 describes:

* the PE array is logically grouped by the unrolling factors
  (:class:`~repro.dataflow.grouping.GroupGeometry`);
* every PE owns a neuron local store and a kernel local store
  (:class:`~repro.arch.local_store.LocalStore`), demand-filled over
  vertical (neuron) and horizontal (kernel) common data buses with
  per-cycle broadcast sharing (RA/RS);
* each cycle, every active PE row sums ``Tn * Ti * Tj`` products through
  its adder tree into the row's output-neuron accumulator;
* one unrolled tile executes per cycle, so the simulated cycle count must
  equal ``factors.outer_iterations(layer)`` — an invariant the tests pin.

The result is numerically compared against the NumPy golden model; this is
the executable proof that the Section 4.3 mapping formulas, the RA synapse
reordering, and the local-store addressing are mutually consistent.

Two interchangeable engines execute the tile stream:

* ``"reference"`` — the per-PE Python loop below: one :class:`CoordStore`
  pair per PE, explicit bus sets per cycle.  Slow, but the golden
  definition of the machine's behaviour.
* ``"tile"`` — the batched-NumPy :class:`~repro.sim.tile_engine.TileEngine`
  fast path, bit-identical on outputs and exact on every counter (the
  equivalence suite in ``tests/sim/test_tile_engine.py`` pins this).
* ``"analytic"`` — the closed-form model in :mod:`repro.sim.analytic`:
  counters are computed, not observed, yet exactly equal to the cycle
  engines' (``tests/sim/test_analytic.py`` pins this); outputs come from
  the NumPy golden model rather than the simulated adder trees, so this
  engine refuses transient-fault runs (a bit flip changes outputs but not
  traffic, which only the executing engines can show).

The default ``"auto"`` picks the tile path whenever its index tables fit
in memory and falls back to the reference loop otherwise; the analytic
engine is only used when explicitly selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.local_store import LocalStore
from repro.dataflow.grouping import GroupGeometry
from repro.dataflow.mapper import map_layer
from repro.dataflow.unrolling import UnrollingFactors, ceil_div
from repro.errors import SimulationError, SpecificationError
from repro.faults.mask import AvailabilityMask, LiveGrid, live_grid
from repro.faults.model import FaultModel, apply_flip, transient_flip
from repro.nn.layers import ConvLayer
from repro.nn.reference import conv2d, pad_input
from repro.obs.tracer import Tracer, counter_delta, current_tracer
from repro.sim.analytic import analytic_flexflow_trace
from repro.sim.tile_engine import TileEngine
from repro.sim.trace import SimTrace

#: A push-time corruption hook: ``(coord, push_sequence, value) -> value``.
Corruptor = Callable[[Hashable, int, float], float]


class CoordStore:
    """A local store addressed by data coordinates.

    Wraps :class:`LocalStore`'s circular auto-increment writes with a
    coordinate -> address map, evicting the overwritten coordinate — so a
    word evicted before reuse must be re-broadcast, making the observed
    traffic capacity-aware.
    """

    def __init__(
        self,
        capacity_words: int,
        name: str,
        corruptor: Optional[Corruptor] = None,
    ) -> None:
        self.store = LocalStore(capacity_words, name=name)
        self._address_of: Dict[Hashable, int] = {}
        self._coord_at: Dict[int, Hashable] = {}
        self._corruptor = corruptor
        #: 1-based push counter — the ``sequence`` fed to the fault hash.
        self.pushes = 0

    def contains(self, coord: Hashable) -> bool:
        return coord in self._address_of

    def write(self, coord: Hashable, value: float) -> None:
        self.pushes += 1
        if self._corruptor is not None:
            value = self._corruptor(coord, self.pushes, value)
        address = self.store.push(value)
        stale = self._coord_at.get(address)
        if stale is not None:
            del self._address_of[stale]
        self._coord_at[address] = coord
        self._address_of[coord] = address

    def read(self, coord: Hashable) -> float:
        address = self._address_of.get(coord)
        if address is None:
            raise SimulationError(f"{self.store.name}: {coord} not resident")
        return self.store.read(address)

    @property
    def reads(self) -> int:
        return self.store.reads

    @property
    def writes(self) -> int:
        return self.store.writes


@dataclass
class _PE:
    """One processing element: two coordinate-addressed local stores."""

    neuron_store: CoordStore
    kernel_store: CoordStore


class FlexFlowFunctionalSim:
    """Cycle-level functional model of the FlexFlow convolutional unit."""

    #: Recognized execution engines (see module docstring).
    ENGINES = ("auto", "tile", "reference", "analytic")

    def __init__(
        self,
        config: Optional[ArchConfig] = None,
        *,
        factors: Optional[UnrollingFactors] = None,
        engine: str = "auto",
        fault_model: Optional[FaultModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if engine not in self.ENGINES:
            raise SpecificationError(
                f"engine must be one of {self.ENGINES}, got {engine!r}"
            )
        self.config = config or ArchConfig(array_dim=4)
        self.factors = factors
        self.engine = engine
        self.fault_model = fault_model
        #: ``None`` defers to the ambient tracer (``obs.current_tracer``)
        #: at run time, so an installed tracer is picked up without
        #: plumbing; the default ambient tracer is disabled.
        self.tracer = tracer

    def _resolve_mask(self) -> Optional[AvailabilityMask]:
        """The effective permanent-fault mask for this run.

        A fault model's derived mask takes precedence over (and composes
        with) the config's static ``pe_mask``.
        """
        model_mask: Optional[AvailabilityMask] = None
        if self.fault_model is not None and self.fault_model.has_permanent_faults:
            model_mask = self.fault_model.mask_for(self.config.array_dim)
        config_mask = self.config.pe_mask
        if model_mask is None:
            return config_mask
        if config_mask is None or config_mask.is_healthy:
            return model_mask
        return AvailabilityMask(
            array_dim=self.config.array_dim,
            dead=model_mask.dead | config_mask.dead,
        )

    def run_layer(
        self,
        layer: ConvLayer,
        inputs: np.ndarray,
        kernels: np.ndarray,
    ) -> Tuple[np.ndarray, SimTrace]:
        """Execute one CONV layer; returns ``(outputs, trace)``.

        Args:
            layer: the layer spec (defines shapes and the mapping).
            inputs: ``(N, in_size, in_size)`` input feature maps.
            kernels: ``(M, N, K, K)`` kernel tensor.
        """
        if tuple(inputs.shape) != layer.input_shape:
            raise SpecificationError(
                f"inputs shape {inputs.shape} != {layer.input_shape}"
            )
        if tuple(kernels.shape) != layer.kernel_shape:
            raise SpecificationError(
                f"kernels shape {kernels.shape} != {layer.kernel_shape}"
            )
        dim = self.config.array_dim
        mask = self._resolve_mask()
        grid: Optional[LiveGrid] = None
        if mask is not None and not mask.is_healthy:
            grid = live_grid(mask)
            if grid.usable_rows == 0 or grid.usable_cols == 0:
                raise SimulationError(
                    f"{layer.name}: no usable PE subgrid survives the fault"
                    f" mask ({mask.num_dead} dead of {dim * dim})"
                )
        factors = self.factors or map_layer(layer, dim, mask=mask).factors
        factors.check(
            layer,
            dim,
            max_rows=None if grid is None else grid.usable_rows,
            max_cols=None if grid is None else grid.usable_cols,
        )
        geometry = GroupGeometry(factors, dim)

        padded = pad_input(inputs, layer.padding)

        use_analytic = self.engine == "analytic"
        if use_analytic and (
            self.fault_model is not None
            and self.fault_model.has_transient_faults
        ):
            raise SimulationError(
                f"{layer.name}: the analytic engine cannot model transient"
                f" bit flips; use the tile or reference engine"
            )
        use_tile = self.engine == "tile" or (
            self.engine == "auto"
            and TileEngine.is_feasible(self.config, layer, factors)
        )
        engine_label = (
            "analytic" if use_analytic else "tile" if use_tile else "reference"
        )
        tracer = self.tracer if self.tracer is not None else current_tracer()
        # The span tree below (layer -> load/compute/drain phases ->
        # per-m0 tile groups) is engine-independent by construction: the
        # engine name is a label, which parity trees exclude, and both
        # engines emit identical group boundaries and counter deltas —
        # the tracer-level equivalence the parity tests pin.
        with tracer.span(
            f"conv:{layer.name}",
            category="sim.flexflow",
            labels={"engine": engine_label},
        ) as layer_span:
            # Load/drain phases model the layer's DMA legs on the
            # D-banked buffers (the same word/D accounting as the
            # mapper's re-layout penalty); compute is the simulated PE
            # array proper.
            load_cycles = ceil_div(
                layer.num_input_words + layer.num_kernel_words, dim
            )
            drain_cycles = ceil_div(layer.num_output_words, dim)
            with tracer.span("phase:load", category="sim.flexflow") as sp:
                sp.set_cycles(load_cycles)
            with tracer.span("phase:compute", category="sim.flexflow") as sp:
                if use_analytic:
                    # Counters from the closed-form model, outputs from the
                    # golden convolution — numerically the same result the
                    # adder trees converge to, without executing them.
                    outputs = conv2d(padded, kernels, stride=layer.stride)
                    trace = analytic_flexflow_trace(
                        layer,
                        factors,
                        neuron_store_words=self.config.neuron_store_words,
                        kernel_store_words=self.config.kernel_store_words,
                    )
                elif use_tile:
                    outputs, trace = TileEngine(
                        self.config,
                        layer,
                        factors,
                        grid=grid,
                        fault_model=self.fault_model,
                        tracer=tracer,
                    ).run(padded, kernels)
                else:
                    outputs, trace = self._run_reference(
                        layer, padded, kernels, factors, geometry, grid,
                        tracer=tracer,
                    )
                if tracer.enabled:
                    sp.set_cycles(trace.cycles)
                    sp.add_counters(trace.as_dict())
            with tracer.span("phase:drain", category="sim.flexflow") as sp:
                sp.set_cycles(drain_cycles)
            if tracer.enabled:
                layer_span.set_cycles(
                    load_cycles + trace.cycles + drain_cycles
                )
                layer_span.add_counters(trace.as_dict())
        return outputs, trace

    def _run_reference(
        self,
        layer: ConvLayer,
        padded: np.ndarray,
        kernels: np.ndarray,
        factors: UnrollingFactors,
        geometry: GroupGeometry,
        grid: Optional[LiveGrid] = None,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[np.ndarray, SimTrace]:
        """The golden per-PE loop: one CoordStore pair per PE."""
        tracer = tracer if tracer is not None else current_tracer()
        stride = layer.stride
        m_total, s_total, k_total = layer.out_maps, layer.out_size, layer.kernel
        n_total = layer.in_maps
        padded_size = padded.shape[1]

        flips_active = (
            self.fault_model is not None
            and self.fault_model.has_transient_faults
        )

        def corruptors(row: int, col: int):
            """Push-time flip hooks for the PE at logical ``(row, col)``.

            The fault hash keys on *physical* coordinates (the live grid's
            steering), so both engines corrupt the same words regardless
            of which logical PE a computation lands on.
            """
            if not flips_active:
                return (None, None)
            phys_row = grid.physical_row(row) if grid is not None else row
            phys_col = grid.physical_col(col) if grid is not None else col
            seed = self.fault_model.seed
            rate = self.fault_model.bitflip_rate

            def corrupt_neuron(coord, sequence, value):
                n, in_r, in_c = coord
                flat = n * (padded_size * padded_size) + in_r * padded_size + in_c
                bit = transient_flip(
                    seed, "neuron", phys_row, phys_col, flat, sequence, rate
                )
                return value if bit is None else apply_flip(value, bit)

            def corrupt_kernel(coord, sequence, value):
                m, n, i, j = coord
                flat = ((m * n_total + n) * k_total + i) * k_total + j
                bit = transient_flip(
                    seed, "kernel", phys_row, phys_col, flat, sequence, rate
                )
                return value if bit is None else apply_flip(value, bit)

            return (corrupt_neuron, corrupt_kernel)

        def make_pe(row: int, col: int) -> _PE:
            neuron_corrupt, kernel_corrupt = corruptors(row, col)
            return _PE(
                neuron_store=CoordStore(
                    self.config.neuron_store_words,
                    f"ns({row},{col})",
                    corruptor=neuron_corrupt,
                ),
                kernel_store=CoordStore(
                    self.config.kernel_store_words,
                    f"ks({row},{col})",
                    corruptor=kernel_corrupt,
                ),
            )

        pes = [
            [make_pe(row, col) for col in range(geometry.active_cols)]
            for row in range(geometry.active_rows)
        ]

        outputs = np.zeros((m_total, s_total, s_total))
        trace = SimTrace()
        f = factors

        for m0 in range(0, m_total, f.tm):
            with tracer.span(
                f"group:m0={m0}", category="sim.flexflow"
            ) as group_span:
                before = trace.as_dict() if tracer.enabled else None
                for r0 in range(0, s_total, f.tr):
                    for c0 in range(0, s_total, f.tc):
                        accumulators = np.zeros(geometry.active_rows)
                        row_targets = {}
                        for row in range(geometry.active_rows):
                            dm, dr, dc = geometry.decompose_row(row)
                            m, r, c = m0 + dm, r0 + dr, c0 + dc
                            if m < m_total and r < s_total and c < s_total:
                                row_targets[row] = (m, r, c)
                        for n0 in range(0, n_total, f.tn):
                            for i0 in range(0, k_total, f.ti):
                                for j0 in range(0, k_total, f.tj):
                                    trace.cycles += 1
                                    self._execute_cycle(
                                        pes,
                                        geometry,
                                        padded,
                                        kernels,
                                        accumulators,
                                        row_targets,
                                        trace,
                                        bases=(m0, n0, r0, c0, i0, j0),
                                        layer_dims=(m_total, n_total, s_total, k_total),
                                        stride=stride,
                                    )
                        for row, (m, r, c) in row_targets.items():
                            outputs[m, r, c] = accumulators[row]
                            trace.neuron_buffer_writes += 1
                if before is not None:
                    delta = counter_delta(before, trace.as_dict())
                    group_span.set_cycles(delta["cycles"])
                    group_span.add_counters(delta)
        return outputs, trace

    def _execute_cycle(
        self,
        pes,
        geometry: GroupGeometry,
        padded: np.ndarray,
        kernels: np.ndarray,
        accumulators: np.ndarray,
        row_targets,
        trace: SimTrace,
        *,
        bases,
        layer_dims,
        stride: int,
    ) -> None:
        """One unrolled tile: demand-fill stores, then all-PE MAC + trees."""
        m0, n0, r0, c0, i0, j0 = bases
        m_total, n_total, s_total, k_total = layer_dims
        f = geometry.factors

        # Per-cycle broadcast sharing: a word already driven onto a bus
        # this cycle is free for every other PE on that bus (RA/RS).
        neuron_bus_words = [set() for _ in range(geometry.active_cols)]
        kernel_group_words: Dict[Tuple[int, int], set] = {}

        for row, target in row_targets.items():
            dm = geometry.decompose_row(row)[0]
            _, r, c = target
            m = target[0]
            tree_sum = 0.0
            for col in range(geometry.active_cols):
                dn, di, dj = geometry.decompose_col(col)
                n, i, j = n0 + dn, i0 + di, j0 + dj
                if n >= n_total or i >= k_total or j >= k_total:
                    continue
                in_r = r * stride + i
                in_c = c * stride + j
                pe = pes[row][col]
                neuron_coord = (n, in_r, in_c)
                if not pe.neuron_store.contains(neuron_coord):
                    if neuron_coord not in neuron_bus_words[col]:
                        trace.neuron_buffer_reads += 1
                        trace.bus_transfers += 1
                        neuron_bus_words[col].add(neuron_coord)
                    pe.neuron_store.write(
                        neuron_coord, padded[n, in_r, in_c]
                    )
                    trace.local_store_writes += 1
                kernel_coord = (m, n, i, j)
                if not pe.kernel_store.contains(kernel_coord):
                    group = geometry.group_for_kernel(m, n)
                    words = kernel_group_words.setdefault(group, set())
                    if kernel_coord not in words:
                        trace.kernel_buffer_reads += 1
                        trace.bus_transfers += 1
                        words.add(kernel_coord)
                    pe.kernel_store.write(kernel_coord, kernels[m, n, i, j])
                    trace.local_store_writes += 1
                neuron = pe.neuron_store.read(neuron_coord)
                synapse = pe.kernel_store.read(kernel_coord)
                trace.local_store_reads += 2
                tree_sum += neuron * synapse
                trace.mac_ops += 1
            accumulators[row] += tree_sum
            trace.register_accesses += 2  # accumulator read + write
