"""Functional simulation of the 2D-Mapping (SFMNSS) shift dataflow.

Section 3.2's machine: a ``B x B`` PE array where each PE owns one output
neuron of a ``B x B`` block of one output feature map.  Per cycle one
synapse ``K(i, j)`` is broadcast to every PE while the neuron window held
by the array shifts: along a kernel row the window moves one column left
(each PE takes its right neighbour's neuron, the rightmost column loads a
fresh one), and at a kernel row boundary the window moves one row up.  The
per-PE FIFOs of Figure 7(b) are what makes the shifted neurons reusable;
the simulator realizes them as an explicit neuron grid whose refill events
are counted as buffer reads and whose shifts as FIFO traffic.

A block therefore takes exactly ``K^2`` cycles per input map, matching the
analytical model; numerics are validated against the golden convolution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError, SpecificationError
from repro.nn.layers import ConvLayer
from repro.nn.reference import pad_input
from repro.obs.tracer import Tracer, current_tracer
from repro.sim.trace import SimTrace


class Mapping2DFunctionalSim:
    """Cycle-level functional model of the 2D-Mapping array."""

    def __init__(
        self, block_size: int = 16, tracer: Optional[Tracer] = None
    ) -> None:
        if block_size <= 0:
            raise SpecificationError(
                f"block_size must be positive, got {block_size}"
            )
        self.block_size = block_size
        self.tracer = tracer

    def run_layer(
        self, layer: ConvLayer, inputs: np.ndarray, kernels: np.ndarray
    ) -> Tuple[np.ndarray, SimTrace]:
        """Execute a stride-1 CONV layer block by block."""
        if layer.stride != 1:
            raise SpecificationError("2D-Mapping dataflow models stride-1 layers")
        if tuple(inputs.shape) != layer.input_shape:
            raise SpecificationError(
                f"inputs shape {inputs.shape} != {layer.input_shape}"
            )
        if tuple(kernels.shape) != layer.kernel_shape:
            raise SpecificationError(
                f"kernels shape {kernels.shape} != {layer.kernel_shape}"
            )
        padded = pad_input(inputs, layer.padding)
        block = self.block_size
        out = np.zeros((layer.out_maps, layer.out_size, layer.out_size))
        trace = SimTrace()
        tracer = self.tracer if self.tracer is not None else current_tracer()
        with tracer.span(
            f"conv:{layer.name}", category="sim.mapping2d"
        ) as span:
            for m in range(layer.out_maps):
                for r0 in range(0, layer.out_size, block):
                    for c0 in range(0, layer.out_size, block):
                        rows = min(block, layer.out_size - r0)
                        cols = min(block, layer.out_size - c0)
                        psum = np.zeros((rows, cols))
                        for n in range(layer.in_maps):
                            self._run_block(
                                padded[n],
                                kernels[m, n],
                                psum,
                                (r0, c0),
                                trace,
                            )
                        out[m, r0:r0 + rows, c0:c0 + cols] = psum
                        trace.neuron_buffer_writes += rows * cols
            if tracer.enabled:
                span.set_cycles(trace.cycles)
                span.add_counters(trace.as_dict())
        return out, trace

    def _run_block(
        self,
        image: np.ndarray,
        kernel: np.ndarray,
        psum: np.ndarray,
        origin: Tuple[int, int],
        trace: SimTrace,
    ) -> None:
        k = kernel.shape[0]
        rows, cols = psum.shape
        r0, c0 = origin
        # The neuron window currently held by the array: window[p, q] is
        # the neuron PE (p, q) will multiply this cycle.
        window: Optional[np.ndarray] = None
        for i in range(k):
            for j in range(k):
                trace.cycles += 1
                trace.kernel_buffer_reads += 1  # synapse broadcast
                trace.bus_transfers += 1
                if window is None:
                    # Initial load: the whole (rows x cols) window.
                    window = image[r0 + i:r0 + i + rows, c0 + j:c0 + j + cols].copy()
                    trace.neuron_buffer_reads += rows * cols
                elif j > 0:
                    # Shift left: PEs take their right neighbour's neuron;
                    # the rightmost column loads fresh neurons.
                    window[:, :-1] = window[:, 1:]
                    trace.fifo_accesses += 2 * rows * (cols - 1)
                    window[:, -1] = image[
                        r0 + i:r0 + i + rows, c0 + j + cols - 1
                    ]
                    trace.neuron_buffer_reads += rows
                else:
                    # Kernel-row boundary: the window moves one row down in
                    # the image and rewinds K-1 columns.  The overlap with
                    # the previous window — (rows-1) x (cols-(K-1)) neurons
                    # — shifts through the per-PE FIFOs; the fresh bottom
                    # row and the rewound leading columns reload from the
                    # buffer.
                    overlap_rows = rows - 1
                    overlap_cols = max(0, cols - (k - 1))
                    reused = overlap_rows * overlap_cols
                    trace.fifo_accesses += 2 * reused
                    trace.neuron_buffer_reads += rows * cols - reused
                    window = image[
                        r0 + i:r0 + i + rows, c0:c0 + cols
                    ].copy()
                sample = window[0, 0]
                expected = image[r0 + i, c0 + j]
                if sample != expected:
                    raise SimulationError(
                        f"window misaligned at kernel ({i},{j}):"
                        f" PE(0,0) holds {sample}, expected {expected}"
                    )
                psum += window * kernel[i, j]
                trace.mac_ops += rows * cols
                trace.register_accesses += 2 * rows * cols
