"""C source for the generated-extension kernel backend (``cext``).

One translation unit holding every compiled kernel.  The Python side
(:mod:`repro.kernels.cext`) writes this string to a temp file, compiles
it with the system C compiler (``cc -O2 -shared -fPIC``) and caches the
shared object under the kernels cache directory keyed by the SHA-256 of
the source + compile command — editing a kernel automatically invalidates
every previously built ``.so``.

Every function mirrors a NumPy expression elsewhere in the tree and must
stay **bit-identical** to it (pinned by ``tests/kernels/test_parity.py``):

* ``repro_enumerate_triples`` — the meshgrid + ``nonzero`` candidate
  enumeration of ``repro.dataflow.mapper._candidate_cache`` (C-order
  nested loops == lexicographic order over sorted inputs).
* ``repro_pair_cycles`` — ``score_candidates_batch``'s step counts and
  outer-product cycle matrix.
* ``repro_coupling_dp`` — the inter-layer coupling DP, a direct port of
  the reference ``_search_scalar`` loops (strict-``<`` first-wins
  updates, buckets in first-appearance order, final pick by
  ``(cost, ceil(M/Tm), lexicographic)``).
* ``repro_flexflow_store_sums`` — the kernel-store fits/thrashes
  dichotomy of ``repro.sim.batch.batch_flexflow_traces`` (integer sums,
  order-independent, hence exact).
* ``repro_surviving_structures`` — the structure-survival counting of
  ``repro.faults.impact`` (reshape + any + sum).

All integer math is ``int64``; inputs are non-negative and small enough
that no intermediate product overflows (the Python callers guarantee
layer extents and factor values fit comfortably).
"""

from __future__ import annotations

#: Bumped when the ABI (function names/signatures) changes incompatibly;
#: folded into the build hash alongside the source text.
KERNELS_C_ABI = 2

KERNELS_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

typedef int64_t i64;

/* ceil(a / b) over positive ints. */
static i64 cdiv(i64 a, i64 b) { return (a + b - 1) / b; }

/* ceil(max(extent, 0) / step): the padded class-table term. */
static i64 ceil_pos(i64 extent, i64 step) {
    if (extent <= 0) return 0;
    return (extent + step - 1) / step;
}

/* Lexicographic triple enumeration under a product limit.  `a`, `b`,
 * `c` are sorted ascending and pre-filtered by the per-factor caps;
 * `out` must hold na*nb*nc*3 entries.  Returns the count kept. */
i64 repro_enumerate_triples(const i64 *a, i64 na, const i64 *b, i64 nb,
                            const i64 *c, i64 nc, i64 limit, i64 *out) {
    i64 n = 0;
    for (i64 ia = 0; ia < na; ia++) {
        for (i64 ib = 0; ib < nb; ib++) {
            i64 ab = a[ia] * b[ib];
            if (ab > limit) continue; /* every c >= 1 */
            for (i64 ic = 0; ic < nc; ic++) {
                if (ab * c[ic] <= limit) {
                    out[n * 3] = a[ia];
                    out[n * 3 + 1] = b[ib];
                    out[n * 3 + 2] = c[ic];
                    n++;
                }
            }
        }
    }
    return n;
}

/* Step counts per side plus the (n x m) outer-product cycle matrix. */
void repro_pair_cycles(const i64 *dims_in, const i64 *ins, i64 n,
                       const i64 *dims_out, const i64 *outs, i64 m,
                       i64 *fin, i64 *fout, i64 *cycles) {
    for (i64 i = 0; i < n; i++) {
        fin[i] = cdiv(dims_in[0], ins[i * 3])
               * cdiv(dims_in[1], ins[i * 3 + 1])
               * cdiv(dims_in[2], ins[i * 3 + 2]);
    }
    for (i64 j = 0; j < m; j++) {
        fout[j] = cdiv(dims_out[0], outs[j * 3])
                * cdiv(dims_out[1], outs[j * 3 + 1])
                * cdiv(dims_out[2], outs[j * 3 + 2]);
    }
    for (i64 i = 0; i < n; i++) {
        for (i64 j = 0; j < m; j++) {
            cycles[i * m + j] = fin[i] * fout[j];
        }
    }
}

/* The whole-network inter-layer coupling DP over the full (unpruned)
 * per-layer output-candidate arrays.  Semantics are exactly the
 * reference scalar DP:
 *
 *   - predecessor states sit in candidate (lexicographic) order;
 *   - transition buckets (the coupled input triple a predecessor offers
 *     the next layer) are visited in first-appearance order and updated
 *     on strict <;
 *   - the free-choice option B wins only on strict <;
 *   - the final pick minimizes (cost, ceil(M/Tm)) with lexicographic
 *     first-wins tie-break.
 *
 * Inputs: `cand` holds every layer's candidates back to back
 * ((offsets[n_layers]) x 3, layer i spanning offsets[i]..offsets[i+1]);
 * `ldims` is n_layers x 4 = (out_maps, out_size, in_maps, kernel);
 * `free_in` n_layers x 3 the best unconstrained input triple per layer;
 * `fin_free` its step count; `penalty` the re-layout cycles.
 *
 * Outputs: per-layer chosen input/output triples and relayout cycles,
 * plus the total cost.  Returns the total candidate count on success or
 * a negative error code. */
i64 repro_coupling_dp(const i64 *cand, const i64 *offsets, i64 n_layers,
                      const i64 *ldims, const i64 *free_in,
                      const i64 *fin_free, const i64 *penalty,
                      i64 col_limit, i64 *in_out, i64 *out_out,
                      i64 *relayout_out, i64 *cost_out) {
    if (n_layers <= 0) return -1;
    i64 max_n = 0;
    for (i64 i = 0; i < n_layers; i++) {
        i64 n = offsets[i + 1] - offsets[i];
        if (n <= 0) return -2;
        if (n > max_n) max_n = n;
    }
    /* Open-addressed bucket lookup table: power of two >= 2 * max_n. */
    i64 hsize = 16;
    while (hsize < 2 * max_n) hsize <<= 1;
    i64 *cost = malloc(sizeof(i64) * (size_t)max_n);
    i64 *next_cost = malloc(sizeof(i64) * (size_t)max_n);
    unsigned char *use_b = malloc((size_t)(n_layers * max_n));
    i64 *prev_idx = malloc(sizeof(i64) * (size_t)(n_layers * max_n));
    i64 *bkey = malloc(sizeof(i64) * (size_t)max_n);
    i64 *bcost = malloc(sizeof(i64) * (size_t)max_n);
    i64 *bprev = malloc(sizeof(i64) * (size_t)max_n);
    i64 *bfin = malloc(sizeof(i64) * (size_t)max_n);
    i64 *htab = malloc(sizeof(i64) * (size_t)hsize);
    i64 *fcost = malloc(sizeof(i64) * (size_t)max_n);
    i64 *ffin = malloc(sizeof(i64) * (size_t)max_n);
    i64 *fprev = malloc(sizeof(i64) * (size_t)max_n);
    unsigned char *bdead = malloc((size_t)max_n);
    if (!cost || !next_cost || !use_b || !prev_idx || !bkey || !bcost ||
        !bprev || !bfin || !htab || !fcost || !ffin || !fprev || !bdead) {
        free(cost); free(next_cost); free(use_b); free(prev_idx);
        free(bkey); free(bcost); free(bprev); free(bfin);
        free(htab); free(fcost); free(ffin); free(fprev); free(bdead);
        return -3;
    }

    /* Layer 0: cost = fout * fin(best free input). */
    {
        const i64 *c0 = cand + offsets[0] * 3;
        i64 n0 = offsets[1] - offsets[0];
        i64 m0 = ldims[0], s0 = ldims[1];
        for (i64 j = 0; j < n0; j++) {
            i64 fo = cdiv(m0, c0[j * 3]) * cdiv(s0, c0[j * 3 + 1])
                   * cdiv(s0, c0[j * 3 + 2]);
            cost[j] = fo * fin_free[0];
        }
    }

    for (i64 li = 1; li < n_layers; li++) {
        const i64 *pc = cand + offsets[li - 1] * 3;
        i64 np_ = offsets[li] - offsets[li - 1];
        const i64 *cc = cand + offsets[li] * 3;
        i64 nc_ = offsets[li + 1] - offsets[li];
        i64 lm = ldims[li * 4], ls = ldims[li * 4 + 1];
        i64 ln = ldims[li * 4 + 2], lk = ldims[li * 4 + 3];

        /* Bucket predecessors by their coupled input triple.  The hash
         * table only accelerates the key lookup; buckets are still
         * created in first-appearance order and updated on strict <,
         * exactly like the reference dict. */
        for (i64 h = 0; h < hsize; h++) htab[h] = -1;
        i64 nb = 0;
        i64 best_prev = 0;
        i64 best_prev_cost = cost[0];
        for (i64 p = 0; p < np_; p++) {
            if (cost[p] < best_prev_cost) {
                best_prev_cost = cost[p];
                best_prev = p;
            }
            i64 tn = pc[p * 3];     if (tn > ln) tn = ln;
            i64 ti = pc[p * 3 + 1]; if (ti > lk) ti = lk;
            i64 tj = pc[p * 3 + 2]; if (tj > lk) tj = lk;
            if (tn * ti * tj > col_limit) continue; /* infeasible bucket */
            i64 key = (tn * (lk + 1) + ti) * (lk + 1) + tj;
            i64 h = (i64)(((uint64_t)key * 0x9E3779B97F4A7C15ULL)
                          >> 32) & (hsize - 1);
            i64 b = -1;
            for (;;) {
                i64 slot = htab[h];
                if (slot < 0) break;
                if (bkey[slot] == key) { b = slot; break; }
                h = (h + 1) & (hsize - 1);
            }
            if (b < 0) {
                b = nb++;
                htab[h] = b;
                bkey[b] = key;
                bcost[b] = cost[p];
                bprev[b] = p;
                bfin[b] = cdiv(ln, tn) * cdiv(lk, ti) * cdiv(lk, tj);
            } else if (cost[p] < bcost[b]) {
                bcost[b] = cost[p];
                bprev[b] = p;
            }
        }

        /* Drop dominated buckets before the per-candidate scan.  Option
         * A's cost is bcost + fo * bfin with fo >= 1, so a bucket whose
         * (bcost, bfin) is pointwise >= another's (strictly somewhere,
         * or an exact duplicate appearing later) can never be strictly
         * smaller than — nor, on the strict-< first-wins scan, beat —
         * its dominator.  Survivors keep first-appearance order, so
         * exact cost ties between incomparable buckets still resolve
         * exactly like the reference full scan. */
        i64 nf = 0;
        for (i64 b = 0; b < nb; b++) {
            bdead[b] = 0;
            for (i64 b2 = 0; b2 < nb; b2++) {
                if (b2 == b) continue;
                if (bcost[b2] > bcost[b] || bfin[b2] > bfin[b]) continue;
                if (bcost[b2] < bcost[b] || bfin[b2] < bfin[b] || b2 < b) {
                    bdead[b] = 1;
                    break;
                }
            }
            if (!bdead[b]) {
                fcost[nf] = bcost[b];
                ffin[nf] = bfin[b];
                fprev[nf] = bprev[b];
                nf++;
            }
        }

        for (i64 j = 0; j < nc_; j++) {
            i64 fo = cdiv(lm, cc[j * 3]) * cdiv(ls, cc[j * 3 + 1])
                   * cdiv(ls, cc[j * 3 + 2]);
            i64 best_a = 0;
            i64 pick_a = -1;
            for (i64 b = 0; b < nf; b++) {
                i64 ca = fcost[b] + fo * ffin[b];
                if (pick_a < 0 || ca < best_a) {
                    best_a = ca;
                    pick_a = b;
                }
            }
            i64 cb = best_prev_cost + fo * fin_free[li] + penalty[li];
            i64 rec = li * max_n + j;
            if (pick_a < 0 || cb < best_a) {
                next_cost[j] = cb;
                use_b[rec] = 1;
                prev_idx[rec] = best_prev;
            } else {
                next_cost[j] = best_a;
                use_b[rec] = 0;
                prev_idx[rec] = fprev[pick_a];
            }
        }
        i64 *tmp = cost;
        cost = next_cost;
        next_cost = tmp;
    }

    /* Final pick over the last layer's states. */
    {
        const i64 *cl = cand + offsets[n_layers - 1] * 3;
        i64 nl = offsets[n_layers] - offsets[n_layers - 1];
        i64 ml = ldims[(n_layers - 1) * 4];
        i64 bj = 0;
        i64 bc = cost[0];
        i64 bm = cdiv(ml, cl[0]);
        for (i64 j = 1; j < nl; j++) {
            i64 cm = cdiv(ml, cl[j * 3]);
            if (cost[j] < bc || (cost[j] == bc && cm < bm)) {
                bj = j;
                bc = cost[j];
                bm = cm;
            }
        }
        cost_out[0] = bc;

        /* Backtrace the winning trace through the per-layer records. */
        i64 j = bj;
        for (i64 li = n_layers - 1; li >= 1; li--) {
            const i64 *cc = cand + offsets[li] * 3;
            out_out[li * 3] = cc[j * 3];
            out_out[li * 3 + 1] = cc[j * 3 + 1];
            out_out[li * 3 + 2] = cc[j * 3 + 2];
            i64 rec = li * max_n + j;
            if (use_b[rec]) {
                in_out[li * 3] = free_in[li * 3];
                in_out[li * 3 + 1] = free_in[li * 3 + 1];
                in_out[li * 3 + 2] = free_in[li * 3 + 2];
                relayout_out[li] = penalty[li];
            } else {
                const i64 *pc = cand + offsets[li - 1] * 3;
                i64 p = prev_idx[rec];
                i64 ln = ldims[li * 4 + 2], lk = ldims[li * 4 + 3];
                i64 tn = pc[p * 3];     if (tn > ln) tn = ln;
                i64 ti = pc[p * 3 + 1]; if (ti > lk) ti = lk;
                i64 tj = pc[p * 3 + 2]; if (tj > lk) tj = lk;
                in_out[li * 3] = tn;
                in_out[li * 3 + 1] = ti;
                in_out[li * 3 + 2] = tj;
                relayout_out[li] = 0;
            }
            j = prev_idx[rec];
        }
        const i64 *c0 = cand + offsets[0] * 3;
        out_out[0] = c0[j * 3];
        out_out[1] = c0[j * 3 + 1];
        out_out[2] = c0[j * 3 + 2];
        in_out[0] = free_in[0];
        in_out[1] = free_in[1];
        in_out[2] = free_in[2];
        relayout_out[0] = 0;
    }

    i64 total = offsets[n_layers];
    free(cost); free(next_cost); free(use_b); free(prev_idx);
    free(bkey); free(bcost); free(bprev); free(bfin);
    free(htab); free(fcost); free(ffin); free(fprev); free(bdead);
    return total;
}

/* The fully fused per-network search: enumerate every layer's output
 * candidates and best free input from the per-dimension useful-value
 * pool, then run the coupling DP — one C call per network.
 *
 * `uvals` is a concatenated pool of useful-value arrays (each sorted
 * ascending); `spec` holds 14 ints per layer:
 *
 *   [0] out_maps  [1] out_size  [2] in_maps  [3] kernel
 *   [4] out tr/tc cap (min(out_size, tr_tc_bound))  [5] relayout penalty
 *   [6..7]   offset/length of useful(out_maps) in uvals
 *   [8..9]   offset/length of useful(out_size)
 *   [10..11] offset/length of useful(in_maps)
 *   [12..13] offset/length of useful(kernel)
 *
 * Output-candidate enumeration matches `_candidate_cache` (caps =
 * (out_maps, cap, cap), product <= row_limit, lexicographic); the best
 * free input matches `_best_input_cached` (lexicographic-first minimum
 * of fin over the (in_maps, kernel, kernel) space under col_limit).
 * Returns the coupling DP's result (total candidates, or negative). */
i64 repro_map_network(const i64 *uvals, const i64 *spec, i64 n_layers,
                      i64 row_limit, i64 col_limit, i64 *in_out,
                      i64 *out_out, i64 *relayout_out, i64 *cost_out) {
    if (n_layers <= 0) return -1;
    i64 capacity = 0;
    for (i64 i = 0; i < n_layers; i++) {
        const i64 *s = spec + i * 14;
        capacity += s[7] * s[9] * s[9];
    }
    i64 *cand = malloc(sizeof(i64) * (size_t)capacity * 3);
    i64 *offsets = malloc(sizeof(i64) * (size_t)(n_layers + 1));
    i64 *ldims = malloc(sizeof(i64) * (size_t)n_layers * 4);
    i64 *free_in = malloc(sizeof(i64) * (size_t)n_layers * 3);
    i64 *fin_free = malloc(sizeof(i64) * (size_t)n_layers);
    i64 *penalty = malloc(sizeof(i64) * (size_t)n_layers);
    if (!cand || !offsets || !ldims || !free_in || !fin_free || !penalty) {
        free(cand); free(offsets); free(ldims);
        free(free_in); free(fin_free); free(penalty);
        return -3;
    }
    offsets[0] = 0;
    i64 n = 0;
    for (i64 i = 0; i < n_layers; i++) {
        const i64 *s = spec + i * 14;
        i64 m = s[0], sz = s[1], nn = s[2], kk = s[3], bound = s[4];
        ldims[i * 4] = m; ldims[i * 4 + 1] = sz;
        ldims[i * 4 + 2] = nn; ldims[i * 4 + 3] = kk;
        penalty[i] = s[5];

        /* Output candidates: caps (m, bound, bound), product <= row_limit. */
        const i64 *ua = uvals + s[6];
        const i64 *ub = uvals + s[8];
        for (i64 ia = 0; ia < s[7]; ia++) {
            i64 a = ua[ia];
            if (a > row_limit) break; /* sorted ascending */
            for (i64 ib = 0; ib < s[9]; ib++) {
                i64 b = ub[ib];
                if (b > bound) break;
                i64 ab = a * b;
                if (ab > row_limit) break;
                for (i64 ic = 0; ic < s[9]; ic++) {
                    i64 c = ub[ic];
                    if (c > bound || ab * c > row_limit) break;
                    cand[n * 3] = a;
                    cand[n * 3 + 1] = b;
                    cand[n * 3 + 2] = c;
                    n++;
                }
            }
        }
        offsets[i + 1] = n;

        /* Best free input: lexicographic-first minimum of fin over the
         * (nn, kk, kk) space with caps (nn, kk, kk), product <= col_limit. */
        const i64 *un = uvals + s[10];
        const i64 *uk = uvals + s[12];
        i64 best_fin = -1;
        for (i64 ia = 0; ia < s[11]; ia++) {
            i64 a = un[ia];
            if (a > col_limit) break;
            for (i64 ib = 0; ib < s[13]; ib++) {
                i64 ab = a * uk[ib];
                if (ab > col_limit) break;
                for (i64 ic = 0; ic < s[13]; ic++) {
                    i64 c = uk[ic];
                    if (ab * c > col_limit) break;
                    i64 fin = cdiv(nn, a) * cdiv(kk, uk[ib]) * cdiv(kk, c);
                    if (best_fin < 0 || fin < best_fin) {
                        best_fin = fin;
                        free_in[i * 3] = a;
                        free_in[i * 3 + 1] = uk[ib];
                        free_in[i * 3 + 2] = c;
                    }
                }
            }
        }
        if (best_fin < 0) {
            free(cand); free(offsets); free(ldims);
            free(free_in); free(fin_free); free(penalty);
            return -2;
        }
        fin_free[i] = best_fin;
    }

    i64 total = repro_coupling_dp(cand, offsets, n_layers, ldims, free_in,
                                  fin_free, penalty, col_limit, in_out,
                                  out_out, relayout_out, cost_out);
    free(cand); free(offsets); free(ldims);
    free(free_in); free(fin_free); free(penalty);
    return total;
}

/* Kernel-store fits/thrashes sums per configuration (the regrouped
 * sum_col l * (thrash ? {n_spatial, sum_nat} : {1, cnt_nat}) form). */
void repro_flexflow_store_sums(i64 batch, const i64 *n_total,
                               const i64 *k_total, const i64 *s_total,
                               const i64 *m_total, const i64 *tn,
                               const i64 *ti, const i64 *tj, const i64 *tr,
                               const i64 *tc, const i64 *cap,
                               i64 *kernel_bus, i64 *kernel_misses) {
    for (i64 i = 0; i < batch; i++) {
        i64 rc = tr[i] * tc[i];
        i64 sum_nat = 0, cnt_nat = 0;
        for (i64 r = 0; r < rc; r++) {
            i64 dr = r / tc[i];
            i64 dc = r % tc[i];
            i64 nat = ceil_pos(s_total[i] - dr, tr[i])
                    * ceil_pos(s_total[i] - dc, tc[i]);
            sum_nat += nat;
            cnt_nat += nat < 1 ? nat : 1;
        }
        i64 n_spatial = cdiv(s_total[i], tr[i]) * cdiv(s_total[i], tc[i]);
        i64 occ = tn[i] * ti[i] * tj[i];
        i64 titj = ti[i] * tj[i];
        i64 bus = 0, miss = 0;
        for (i64 col = 0; col < occ; col++) {
            i64 dn = col / titj;
            i64 rest = col % titj;
            i64 di = rest / tj[i];
            i64 dj = rest % tj[i];
            i64 l = ceil_pos(n_total[i] - dn, tn[i])
                  * ceil_pos(k_total[i] - di, ti[i])
                  * ceil_pos(k_total[i] - dj, tj[i]);
            if (l > cap[i]) {
                bus += l * n_spatial;
                miss += l * sum_nat;
            } else {
                bus += l;
                miss += l * cnt_nat;
            }
        }
        kernel_bus[i] = m_total[i] * bus;
        kernel_misses[i] = m_total[i] * miss;
    }
}

/* Count structures (row-major groups of `size` PEs) with no dead member.
 * Flags past `n_flags` model nonexistent, hence fault-free, PEs. */
i64 repro_surviving_structures(const unsigned char *flags, i64 n_flags,
                               i64 n_struct, i64 size) {
    i64 alive = 0;
    for (i64 s = 0; s < n_struct; s++) {
        i64 base = s * size;
        i64 dead = 0;
        for (i64 t = 0; t < size; t++) {
            i64 idx = base + t;
            if (idx < n_flags && flags[idx]) {
                dead = 1;
                break;
            }
        }
        alive += !dead;
    }
    return alive;
}
"""
