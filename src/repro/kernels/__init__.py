"""Compiled kernel backends for the DSE hot paths.

``REPRO_KERNELS`` selects the backend:

- ``auto`` (default): best available — ``numba`` if importable, else the
  generated-C extension (``cext``) if a C compiler is present, else pure
  NumPy. Unavailable backends are skipped silently in this mode.
- ``numba`` / ``cext``: that backend, or :class:`ConfigurationError` if
  it cannot be loaded (numba missing / no C compiler).
- ``numpy``: force the pure-NumPy reference paths (no compiled code).

All backends are bit-identical: the compiled kernels are integer-exact
ports of the NumPy expressions they replace, and the parity suite
(``tests/kernels/test_parity.py``) pins every kernel against its
reference under whichever backends the machine can load.

Loading is memoized per process; :func:`reset_kernels` clears the memo
so tests can flip ``REPRO_KERNELS`` mid-run. Loads emit a
``kernels:load:<backend>`` span (category ``kernels``) so JIT/compile
warm-up cost shows in traces, and every kernel invocation at a wired
call site bumps ``kernels.calls{kernel=...,backend=...}`` via
:func:`count_kernel_call`.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs import REGISTRY, current_tracer

ENV_KERNELS = "REPRO_KERNELS"
VALID_BACKENDS: Tuple[str, ...] = ("auto", "numba", "cext", "numpy")

# (resolved_env_value, suite_or_None); None suite == pure-NumPy paths.
_active: Optional[Tuple[str, Optional[object]]] = None


def requested_backend() -> str:
    """The validated ``REPRO_KERNELS`` value (default ``auto``)."""
    raw = os.environ.get(ENV_KERNELS, "auto").strip().lower() or "auto"
    if raw not in VALID_BACKENDS:
        choices = ", ".join(VALID_BACKENDS)
        raise ConfigurationError(
            f"invalid {ENV_KERNELS} value {raw!r}: valid backends are"
            f" {choices} (example: {ENV_KERNELS}=cext)"
        )
    return raw


def _load_numba(strict: bool):
    from repro.kernels import numba_backend

    if not numba_backend.AVAILABLE:
        if strict:
            raise ConfigurationError(
                f"{ENV_KERNELS}=numba requested but numba is not installed;"
                f" use one of: {', '.join(VALID_BACKENDS)}"
            )
        return None
    tracer = current_tracer()
    with tracer.span("kernels:load:numba", category="kernels") as span:
        suite = numba_backend.load()
        numba_backend.warm_up(suite)
        span.set_label("backend", "numba")
    REGISTRY.counter("kernels.loads", backend="numba").inc()
    return suite


def _load_cext(strict: bool):
    from repro.kernels import cext

    tracer = current_tracer()
    try:
        with tracer.span("kernels:load:cext", category="kernels") as span:
            suite, built = cext.load()
            span.set_label("backend", "cext")
            span.set_label("freshly_built", "yes" if built else "no")
    except cext.KernelBuildError as exc:
        if strict:
            raise ConfigurationError(
                f"{ENV_KERNELS}=cext requested but the C backend cannot be"
                f" built: {exc}; use one of: {', '.join(VALID_BACKENDS)}"
            ) from exc
        return None
    REGISTRY.counter("kernels.loads", backend="cext").inc()
    if built:
        REGISTRY.counter("kernels.builds", backend="cext").inc()
    return suite


def _resolve(choice: str):
    if choice == "numpy":
        return None
    if choice == "numba":
        return _load_numba(strict=True)
    if choice == "cext":
        return _load_cext(strict=True)
    suite = _load_numba(strict=False)
    if suite is None:
        suite = _load_cext(strict=False)
    return suite


def active_kernels():
    """The loaded kernel suite, or ``None`` when NumPy paths should run.

    Memoized against the resolved ``REPRO_KERNELS`` value: flipping the
    environment variable takes effect on the next call without needing
    :func:`reset_kernels`.
    """
    global _active
    choice = requested_backend()
    if _active is not None and _active[0] == choice:
        return _active[1]
    suite = _resolve(choice)
    _active = (choice, suite)
    return suite


def kernel_backend() -> str:
    """The name of the backend actually in use (``numpy`` if none loaded)."""
    suite = active_kernels()
    return "numpy" if suite is None else suite.backend


def reset_kernels() -> None:
    """Drop the memoized suite (tests flip ``REPRO_KERNELS`` mid-run)."""
    global _active
    _active = None


def count_kernel_call(kernel: str, backend: str) -> None:
    """Bump the per-kernel hit counter for a wired call site."""
    REGISTRY.counter("kernels.calls", kernel=kernel, backend=backend).inc()


__all__ = [
    "ENV_KERNELS",
    "VALID_BACKENDS",
    "active_kernels",
    "count_kernel_call",
    "kernel_backend",
    "requested_backend",
    "reset_kernels",
]
