"""The numba ``@njit`` kernel backend (optional; import-guarded).

Each jitted function is a line-for-line mirror of its C twin in
:mod:`repro.kernels.csrc` — same loop order, same strict-``<`` updates,
same ``int64`` arithmetic — so both compiled backends stay bit-identical
to the NumPy reference paths (``tests/kernels/test_parity.py`` runs the
full parity suite under whichever of them the machine has).

numba is deliberately not a dependency of this package: the module
imports cleanly without it (``AVAILABLE`` is ``False`` and :func:`load`
raises), which is what keeps the pure-NumPy fallback first-class.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import MappingError, ReproError

Triple = Tuple[int, int, int]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    AVAILABLE = True
except ImportError:
    numba = None  # type: ignore[assignment]
    AVAILABLE = False


class NumbaUnavailableError(ReproError):
    """numba was requested but is not importable in this environment."""


if AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _njit = numba.njit(cache=False, fastmath=False)

    @_njit
    def _enumerate_triples(a, b, c, limit, out):
        n = 0
        for ia in range(a.shape[0]):
            for ib in range(b.shape[0]):
                ab = a[ia] * b[ib]
                if ab > limit:
                    continue
                for ic in range(c.shape[0]):
                    if ab * c[ic] <= limit:
                        out[n, 0] = a[ia]
                        out[n, 1] = b[ib]
                        out[n, 2] = c[ic]
                        n += 1
        return n

    @_njit
    def _pair_cycles(dims_in, ins, dims_out, outs, fin, fout, cycles):
        for i in range(ins.shape[0]):
            fin[i] = (
                -(-dims_in[0] // ins[i, 0])
                * -(-dims_in[1] // ins[i, 1])
                * -(-dims_in[2] // ins[i, 2])
            )
        for j in range(outs.shape[0]):
            fout[j] = (
                -(-dims_out[0] // outs[j, 0])
                * -(-dims_out[1] // outs[j, 1])
                * -(-dims_out[2] // outs[j, 2])
            )
        for i in range(ins.shape[0]):
            for j in range(outs.shape[0]):
                cycles[i, j] = fin[i] * fout[j]

    @_njit
    def _coupling_dp(
        cand, offsets, ldims, free_in, fin_free, penalty, col_limit,
        in_out, out_out, relayout_out,
    ):
        n_layers = ldims.shape[0]
        if n_layers <= 0:
            return np.int64(0), np.int64(-1)
        max_n = np.int64(0)
        for i in range(n_layers):
            n = offsets[i + 1] - offsets[i]
            if n <= 0:
                return np.int64(0), np.int64(-2)
            if n > max_n:
                max_n = n
        hsize = np.int64(16)
        while hsize < 2 * max_n:
            hsize <<= 1
        cost = np.empty(max_n, dtype=np.int64)
        next_cost = np.empty(max_n, dtype=np.int64)
        use_b = np.zeros((n_layers, max_n), dtype=np.uint8)
        prev_idx = np.zeros((n_layers, max_n), dtype=np.int64)
        bkey = np.empty(max_n, dtype=np.int64)
        bcost = np.empty(max_n, dtype=np.int64)
        bprev = np.empty(max_n, dtype=np.int64)
        bfin = np.empty(max_n, dtype=np.int64)
        htab = np.empty(hsize, dtype=np.int64)
        fcost = np.empty(max_n, dtype=np.int64)
        ffin = np.empty(max_n, dtype=np.int64)
        fprev = np.empty(max_n, dtype=np.int64)

        base0 = offsets[0]
        n0 = offsets[1] - offsets[0]
        m0 = ldims[0, 0]
        s0 = ldims[0, 1]
        for j in range(n0):
            fo = (
                -(-m0 // cand[base0 + j, 0])
                * -(-s0 // cand[base0 + j, 1])
                * -(-s0 // cand[base0 + j, 2])
            )
            cost[j] = fo * fin_free[0]

        for li in range(1, n_layers):
            pbase = offsets[li - 1]
            np_ = offsets[li] - offsets[li - 1]
            cbase = offsets[li]
            nc_ = offsets[li + 1] - offsets[li]
            lm = ldims[li, 0]
            ls = ldims[li, 1]
            ln = ldims[li, 2]
            lk = ldims[li, 3]

            # Buckets in first-appearance order via hash lookup (the
            # table only accelerates the key search).
            htab[:] = -1
            nb = np.int64(0)
            best_prev = np.int64(0)
            best_prev_cost = cost[0]
            for p in range(np_):
                if cost[p] < best_prev_cost:
                    best_prev_cost = cost[p]
                    best_prev = p
                tn = min(cand[pbase + p, 0], ln)
                ti = min(cand[pbase + p, 1], lk)
                tj = min(cand[pbase + p, 2], lk)
                if tn * ti * tj > col_limit:
                    continue
                key = (tn * (lk + 1) + ti) * (lk + 1) + tj
                h = np.int64(
                    (np.uint64(key) * np.uint64(0x9E3779B97F4A7C15))
                    >> np.uint64(32)
                ) & (hsize - 1)
                b = np.int64(-1)
                while True:
                    slot = htab[h]
                    if slot < 0:
                        break
                    if bkey[slot] == key:
                        b = slot
                        break
                    h = (h + 1) & (hsize - 1)
                if b < 0:
                    b = nb
                    nb += 1
                    htab[h] = b
                    bkey[b] = key
                    bcost[b] = cost[p]
                    bprev[b] = p
                    bfin[b] = (
                        -(-ln // tn) * -(-lk // ti) * -(-lk // tj)
                    )
                elif cost[p] < bcost[b]:
                    bcost[b] = cost[p]
                    bprev[b] = p

            # Pareto front over (bcost, bfin): dominated buckets can
            # never win the strict-< scan (fo >= 1), and survivors keep
            # first-appearance order so exact ties resolve identically.
            nf = np.int64(0)
            for b in range(nb):
                dead = False
                for b2 in range(nb):
                    if b2 == b:
                        continue
                    if bcost[b2] > bcost[b] or bfin[b2] > bfin[b]:
                        continue
                    if (
                        bcost[b2] < bcost[b]
                        or bfin[b2] < bfin[b]
                        or b2 < b
                    ):
                        dead = True
                        break
                if not dead:
                    fcost[nf] = bcost[b]
                    ffin[nf] = bfin[b]
                    fprev[nf] = bprev[b]
                    nf += 1

            for j in range(nc_):
                fo = (
                    -(-lm // cand[cbase + j, 0])
                    * -(-ls // cand[cbase + j, 1])
                    * -(-ls // cand[cbase + j, 2])
                )
                best_a = np.int64(0)
                pick_a = np.int64(-1)
                for b in range(nf):
                    ca = fcost[b] + fo * ffin[b]
                    if pick_a < 0 or ca < best_a:
                        best_a = ca
                        pick_a = b
                cb = best_prev_cost + fo * fin_free[li] + penalty[li]
                if pick_a < 0 or cb < best_a:
                    next_cost[j] = cb
                    use_b[li, j] = 1
                    prev_idx[li, j] = best_prev
                else:
                    next_cost[j] = best_a
                    use_b[li, j] = 0
                    prev_idx[li, j] = fprev[pick_a]
            tmp = cost
            cost = next_cost
            next_cost = tmp

        lbase = offsets[n_layers - 1]
        nl = offsets[n_layers] - offsets[n_layers - 1]
        ml = ldims[n_layers - 1, 0]
        bj = np.int64(0)
        bc = cost[0]
        bm = -(-ml // cand[lbase, 0])
        for j in range(1, nl):
            cm = -(-ml // cand[lbase + j, 0])
            if cost[j] < bc or (cost[j] == bc and cm < bm):
                bj = j
                bc = cost[j]
                bm = cm
        final_cost = bc

        j = bj
        for li in range(n_layers - 1, 0, -1):
            cbase = offsets[li]
            out_out[li, 0] = cand[cbase + j, 0]
            out_out[li, 1] = cand[cbase + j, 1]
            out_out[li, 2] = cand[cbase + j, 2]
            if use_b[li, j]:
                in_out[li, 0] = free_in[li, 0]
                in_out[li, 1] = free_in[li, 1]
                in_out[li, 2] = free_in[li, 2]
                relayout_out[li] = penalty[li]
            else:
                pbase = offsets[li - 1]
                p = prev_idx[li, j]
                ln = ldims[li, 2]
                lk = ldims[li, 3]
                in_out[li, 0] = min(cand[pbase + p, 0], ln)
                in_out[li, 1] = min(cand[pbase + p, 1], lk)
                in_out[li, 2] = min(cand[pbase + p, 2], lk)
                relayout_out[li] = 0
            j = prev_idx[li, j]
        base0 = offsets[0]
        out_out[0, 0] = cand[base0 + j, 0]
        out_out[0, 1] = cand[base0 + j, 1]
        out_out[0, 2] = cand[base0 + j, 2]
        in_out[0, 0] = free_in[0, 0]
        in_out[0, 1] = free_in[0, 1]
        in_out[0, 2] = free_in[0, 2]
        relayout_out[0] = 0
        return final_cost, offsets[n_layers]

    @_njit
    def _map_network(
        uvals, spec, row_limit, col_limit,
        in_out, out_out, relayout_out,
    ):
        n_layers = spec.shape[0]
        if n_layers <= 0:
            return np.int64(0), np.int64(-1)
        capacity = np.int64(0)
        for i in range(n_layers):
            capacity += spec[i, 7] * spec[i, 9] * spec[i, 9]
        cand = np.empty((capacity, 3), dtype=np.int64)
        offsets = np.zeros(n_layers + 1, dtype=np.int64)
        ldims = np.empty((n_layers, 4), dtype=np.int64)
        free_in = np.empty((n_layers, 3), dtype=np.int64)
        fin_free = np.empty(n_layers, dtype=np.int64)
        penalty = np.empty(n_layers, dtype=np.int64)
        n = np.int64(0)
        for i in range(n_layers):
            m = spec[i, 0]
            sz = spec[i, 1]
            nn = spec[i, 2]
            kk = spec[i, 3]
            bound = spec[i, 4]
            ldims[i, 0] = m
            ldims[i, 1] = sz
            ldims[i, 2] = nn
            ldims[i, 3] = kk
            penalty[i] = spec[i, 5]

            for ia in range(spec[i, 7]):
                a = uvals[spec[i, 6] + ia]
                if a > row_limit:
                    break
                for ib in range(spec[i, 9]):
                    b = uvals[spec[i, 8] + ib]
                    if b > bound:
                        break
                    ab = a * b
                    if ab > row_limit:
                        break
                    for ic in range(spec[i, 9]):
                        c = uvals[spec[i, 8] + ic]
                        if c > bound or ab * c > row_limit:
                            break
                        cand[n, 0] = a
                        cand[n, 1] = b
                        cand[n, 2] = c
                        n += 1
            offsets[i + 1] = n

            best_fin = np.int64(-1)
            for ia in range(spec[i, 11]):
                a = uvals[spec[i, 10] + ia]
                if a > col_limit:
                    break
                for ib in range(spec[i, 13]):
                    bv = uvals[spec[i, 12] + ib]
                    ab = a * bv
                    if ab > col_limit:
                        break
                    for ic in range(spec[i, 13]):
                        c = uvals[spec[i, 12] + ic]
                        if ab * c > col_limit:
                            break
                        fin = (
                            -(-nn // a) * -(-kk // bv) * -(-kk // c)
                        )
                        if best_fin < 0 or fin < best_fin:
                            best_fin = fin
                            free_in[i, 0] = a
                            free_in[i, 1] = bv
                            free_in[i, 2] = c
            if best_fin < 0:
                return np.int64(0), np.int64(-2)
            fin_free[i] = best_fin

        return _coupling_dp(
            cand, offsets, ldims, free_in, fin_free, penalty, col_limit,
            in_out, out_out, relayout_out,
        )

    @_njit
    def _flexflow_store_sums(
        n_total, k_total, s_total, m_total, tn, ti, tj, tr, tc, cap,
        kernel_bus, kernel_misses,
    ):
        for i in range(n_total.shape[0]):
            rc = tr[i] * tc[i]
            sum_nat = np.int64(0)
            cnt_nat = np.int64(0)
            for r in range(rc):
                dr = r // tc[i]
                dc = r % tc[i]
                er = s_total[i] - dr
                ec = s_total[i] - dc
                nr = 0 if er <= 0 else (er + tr[i] - 1) // tr[i]
                ncv = 0 if ec <= 0 else (ec + tc[i] - 1) // tc[i]
                nat = nr * ncv
                sum_nat += nat
                cnt_nat += nat if nat < 1 else 1
            n_spatial = (
                -(-s_total[i] // tr[i]) * -(-s_total[i] // tc[i])
            )
            occ = tn[i] * ti[i] * tj[i]
            titj = ti[i] * tj[i]
            bus = np.int64(0)
            miss = np.int64(0)
            for col in range(occ):
                dn = col // titj
                rest = col % titj
                di = rest // tj[i]
                dj = rest % tj[i]
                en = n_total[i] - dn
                ei = k_total[i] - di
                ej = k_total[i] - dj
                cn = 0 if en <= 0 else (en + tn[i] - 1) // tn[i]
                ci = 0 if ei <= 0 else (ei + ti[i] - 1) // ti[i]
                cj = 0 if ej <= 0 else (ej + tj[i] - 1) // tj[i]
                l = cn * ci * cj
                if l > cap[i]:
                    bus += l * n_spatial
                    miss += l * sum_nat
                else:
                    bus += l
                    miss += l * cnt_nat
            kernel_bus[i] = m_total[i] * bus
            kernel_misses[i] = m_total[i] * miss

    @_njit
    def _surviving_structures(flags, n_struct, size):
        alive = np.int64(0)
        for s in range(n_struct):
            base = s * size
            dead = False
            for t in range(size):
                idx = base + t
                if idx < flags.shape[0] and flags[idx]:
                    dead = True
                    break
            if not dead:
                alive += 1
        return alive


def _i64(values) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.int64)


class NumbaKernels:  # pragma: no cover - exercised only where numba is installed
    """The jitted kernel suite (same surface as :class:`CExtKernels`)."""

    backend = "numba"

    def enumerate_triples(self, a, b, c, limit: int) -> np.ndarray:
        a, b, c = _i64(a), _i64(b), _i64(c)
        capacity = len(a) * len(b) * len(c)
        if capacity == 0:
            return np.empty((0, 3), dtype=np.int64)
        out = np.empty((capacity, 3), dtype=np.int64)
        kept = _enumerate_triples(a, b, c, np.int64(limit), out)
        return out[: int(kept)]

    def pair_cycles(self, dims_in, ins, dims_out, outs):
        ins, outs = _i64(ins), _i64(outs)
        fin = np.empty(len(ins), dtype=np.int64)
        fout = np.empty(len(outs), dtype=np.int64)
        cycles = np.empty((len(ins), len(outs)), dtype=np.int64)
        _pair_cycles(_i64(dims_in), ins, _i64(dims_out), outs, fin, fout, cycles)
        return fin, fout, cycles

    def coupling_dp(
        self, cand, offsets, ldims, free_in, fin_free, penalty, col_limit: int
    ):
        cand, offsets, ldims = _i64(cand), _i64(offsets), _i64(ldims)
        free_in, fin_free = _i64(free_in), _i64(fin_free)
        penalty = _i64(penalty)
        n_layers = len(ldims)
        in_out = np.empty((n_layers, 3), dtype=np.int64)
        out_out = np.empty((n_layers, 3), dtype=np.int64)
        relayout = np.empty(n_layers, dtype=np.int64)
        cost, total = _coupling_dp(
            cand, offsets, ldims, free_in, fin_free, penalty,
            np.int64(col_limit), in_out, out_out, relayout,
        )
        if total < 0:
            raise MappingError(
                f"coupling DP kernel rejected its inputs (code {int(total)})"
            )
        return in_out, out_out, relayout, int(cost), int(total)

    def map_network_dp(self, uvals, spec, row_limit: int, col_limit: int):
        uvals, spec = _i64(uvals), _i64(spec)
        n_layers = len(spec)
        in_out = np.empty((n_layers, 3), dtype=np.int64)
        out_out = np.empty((n_layers, 3), dtype=np.int64)
        relayout = np.empty(n_layers, dtype=np.int64)
        cost, total = _map_network(
            uvals, spec, np.int64(row_limit), np.int64(col_limit),
            in_out, out_out, relayout,
        )
        if total < 0:
            raise MappingError(
                f"map-network kernel rejected its inputs (code {int(total)})"
            )
        return in_out, out_out, relayout, int(cost), int(total)

    def flexflow_store_sums(
        self, n_total, k_total, s_total, m_total, tn, ti, tj, tr, tc, cap
    ):
        cols = [
            _i64(x)
            for x in (n_total, k_total, s_total, m_total, tn, ti, tj, tr, tc, cap)
        ]
        batch = len(cols[0])
        bus = np.empty(batch, dtype=np.int64)
        misses = np.empty(batch, dtype=np.int64)
        _flexflow_store_sums(*cols, bus, misses)
        return bus, misses

    def surviving_structures(self, flags, n_struct: int, size: int) -> int:
        flags = np.ascontiguousarray(flags, dtype=np.uint8)
        return int(
            _surviving_structures(flags, np.int64(n_struct), np.int64(size))
        )


def warm_up(suite: "NumbaKernels") -> None:  # pragma: no cover - numba only
    """Trigger every kernel's JIT compile with tiny inputs.

    Called inside the ``kernels:load`` span so compile time is visible in
    traces instead of silently inflating the first real search.
    """
    one = np.ones(1, dtype=np.int64)
    triple = np.ones((1, 3), dtype=np.int64)
    suite.enumerate_triples(one, one, one, 1)
    suite.pair_cycles((1, 1, 1), triple, (1, 1, 1), triple)
    suite.coupling_dp(
        triple,
        np.array([0, 1], dtype=np.int64),
        np.ones((1, 4), dtype=np.int64),
        triple,
        one, np.zeros(1, dtype=np.int64), 1,
    )
    spec = np.array(
        [[1, 1, 1, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1]], dtype=np.int64
    )
    suite.map_network_dp(one, spec, 1, 1)
    suite.flexflow_store_sums(*(one,) * 10)
    suite.surviving_structures(np.zeros(1, dtype=np.uint8), 1, 1)


def load() -> "NumbaKernels":
    """The jitted suite, or :class:`NumbaUnavailableError` without numba."""
    if not AVAILABLE:
        raise NumbaUnavailableError(
            "the numba kernel backend was requested but numba is not"
            " installed in this environment"
        )
    return NumbaKernels()  # pragma: no cover - numba only
