"""The generated-C kernel backend: build, cache, and bind with ctypes.

The C source lives in :mod:`repro.kernels.csrc` as one translation unit.
:func:`load` writes it next to the kernels cache directory
(``cache_root()/kernels``), compiles it with the system C compiler
(``$CC`` or ``cc``/``gcc``, ``-O2 -shared -fPIC``) and memoizes the
shared object by the SHA-256 of the source + compiler command + ABI tag,
so editing a kernel or switching compilers rebuilds while repeated runs
(and concurrent processes — the build publishes through a unique temp
file and ``os.replace``) share one ``.so``.

Every binding coerces its inputs to contiguous ``int64`` arrays and
returns plain numpy arrays/ints, mirroring the NumPy expressions the
kernels replace — parity is pinned by ``tests/kernels/test_parity.py``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import MappingError, ReproError
from repro.kernels.csrc import KERNELS_C_ABI, KERNELS_C_SOURCE

Triple = Tuple[int, int, int]

_I64_P = ctypes.POINTER(ctypes.c_int64)
_U8_P = ctypes.POINTER(ctypes.c_uint8)


class KernelBuildError(ReproError):
    """The C backend could not be compiled or loaded on this machine."""


def _compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when the machine has none."""
    configured = os.environ.get("CC")
    if configured:
        return configured if shutil.which(configured) else None
    for name in ("cc", "gcc", "clang"):
        if shutil.which(name):
            return name
    return None


def build_digest(compiler: str) -> str:
    """Content hash naming the built artifact (source + command + ABI)."""
    payload = "\x00".join(
        (KERNELS_C_SOURCE, compiler, f"abi={KERNELS_C_ABI}")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def default_build_dir() -> Path:
    """Where built shared objects live (inside the persistent cache root)."""
    from repro.cache import cache_root

    return cache_root() / "kernels"


def build_library(build_dir: Optional[Path] = None) -> Tuple[Path, bool]:
    """Compile (or reuse) the shared object; ``(path, freshly_built)``.

    Concurrent builders race benignly: each compiles into its own temp
    file and publishes with ``os.replace``, so the digest-named ``.so``
    is always complete.
    """
    compiler = _compiler()
    if compiler is None:
        raise KernelBuildError(
            "no C compiler found (set $CC or install cc/gcc/clang)"
        )
    directory = Path(build_dir) if build_dir else default_build_dir()
    digest = build_digest(compiler)
    so_path = directory / f"repro-kernels-{digest}.so"
    if so_path.is_file():
        return so_path, False
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(
            prefix="repro-kernels-build-", dir=str(directory)
        ) as tmp:
            src = Path(tmp) / "kernels.c"
            obj = Path(tmp) / "kernels.so"
            src.write_text(KERNELS_C_SOURCE)
            proc = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", str(obj), str(src)],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise KernelBuildError(
                    f"{compiler} failed to build the kernel extension:"
                    f" {proc.stderr.strip() or proc.stdout.strip()}"
                )
            os.replace(obj, so_path)
    except (OSError, subprocess.SubprocessError) as exc:
        raise KernelBuildError(
            f"cannot build the kernel extension under {directory}: {exc}"
        ) from exc
    return so_path, True


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Declare every exported function's signature."""
    lib.repro_enumerate_triples.restype = ctypes.c_int64
    lib.repro_enumerate_triples.argtypes = [
        _I64_P, ctypes.c_int64, _I64_P, ctypes.c_int64,
        _I64_P, ctypes.c_int64, ctypes.c_int64, _I64_P,
    ]
    lib.repro_pair_cycles.restype = None
    lib.repro_pair_cycles.argtypes = [
        _I64_P, _I64_P, ctypes.c_int64,
        _I64_P, _I64_P, ctypes.c_int64,
        _I64_P, _I64_P, _I64_P,
    ]
    lib.repro_coupling_dp.restype = ctypes.c_int64
    lib.repro_coupling_dp.argtypes = [
        _I64_P, _I64_P, ctypes.c_int64, _I64_P, _I64_P, _I64_P, _I64_P,
        ctypes.c_int64, _I64_P, _I64_P, _I64_P, _I64_P,
    ]
    lib.repro_map_network.restype = ctypes.c_int64
    lib.repro_map_network.argtypes = [
        _I64_P, _I64_P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _I64_P, _I64_P, _I64_P, _I64_P,
    ]
    lib.repro_flexflow_store_sums.restype = None
    lib.repro_flexflow_store_sums.argtypes = [
        ctypes.c_int64,
        _I64_P, _I64_P, _I64_P, _I64_P,
        _I64_P, _I64_P, _I64_P, _I64_P, _I64_P, _I64_P,
        _I64_P, _I64_P,
    ]
    lib.repro_surviving_structures.restype = ctypes.c_int64
    lib.repro_surviving_structures.argtypes = [
        _U8_P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
    ]
    return lib


def _i64(values, copy_ok: bool = True) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    return arr


def _ptr(arr: np.ndarray):
    return arr.ctypes.data_as(_I64_P)


class CExtKernels:
    """ctypes bindings over the built shared object."""

    backend = "cext"

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib

    # -- mapper ---------------------------------------------------------------

    def enumerate_triples(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, limit: int
    ) -> np.ndarray:
        """Lexicographic triples of ``a x b x c`` with product <= limit."""
        a, b, c = _i64(a), _i64(b), _i64(c)
        capacity = len(a) * len(b) * len(c)
        if capacity == 0:
            return np.empty((0, 3), dtype=np.int64)
        out = np.empty((capacity, 3), dtype=np.int64)
        kept = self._lib.repro_enumerate_triples(
            _ptr(a), len(a), _ptr(b), len(b), _ptr(c), len(c),
            ctypes.c_int64(limit), _ptr(out),
        )
        return out[: int(kept)]

    def pair_cycles(
        self,
        dims_in: Triple,
        ins: np.ndarray,
        dims_out: Triple,
        outs: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(fin, fout, fin x fout)`` step counts for every candidate pair."""
        ins = _i64(ins)
        outs = _i64(outs)
        n, m = len(ins), len(outs)
        fin = np.empty(n, dtype=np.int64)
        fout = np.empty(m, dtype=np.int64)
        cycles = np.empty((n, m), dtype=np.int64)
        din = _i64(dims_in)
        dout = _i64(dims_out)
        self._lib.repro_pair_cycles(
            _ptr(din), _ptr(ins), n, _ptr(dout), _ptr(outs), m,
            _ptr(fin), _ptr(fout), _ptr(cycles),
        )
        return fin, fout, cycles

    def coupling_dp(
        self,
        cand: np.ndarray,
        offsets: np.ndarray,
        ldims: np.ndarray,
        free_in: np.ndarray,
        fin_free: np.ndarray,
        penalty: np.ndarray,
        col_limit: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
        """The whole-network coupling DP; see ``repro_coupling_dp``.

        Returns ``(in_triples, out_triples, relayout_cycles, total_cost,
        total_candidates)`` with one row per CONV layer.
        """
        cand = _i64(cand)
        offsets = _i64(offsets)
        ldims = _i64(ldims)
        free_in = _i64(free_in)
        fin_free = _i64(fin_free)
        penalty = _i64(penalty)
        n_layers = len(ldims)
        in_out = np.empty((n_layers, 3), dtype=np.int64)
        out_out = np.empty((n_layers, 3), dtype=np.int64)
        relayout = np.empty(n_layers, dtype=np.int64)
        cost = np.empty(1, dtype=np.int64)
        total = self._lib.repro_coupling_dp(
            _ptr(cand), _ptr(offsets), n_layers, _ptr(ldims),
            _ptr(free_in), _ptr(fin_free), _ptr(penalty),
            ctypes.c_int64(col_limit),
            _ptr(in_out), _ptr(out_out), _ptr(relayout), _ptr(cost),
        )
        if total < 0:
            raise MappingError(
                f"coupling DP kernel rejected its inputs (code {int(total)})"
            )
        return in_out, out_out, relayout, int(cost[0]), int(total)

    def map_network_dp(
        self,
        uvals: np.ndarray,
        spec: np.ndarray,
        row_limit: int,
        col_limit: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
        """The fused per-network search; see ``repro_map_network``.

        ``spec`` is ``(L, 14)`` per-layer records over the ``uvals``
        useful-value pool; returns ``(in_triples, out_triples,
        relayout_cycles, total_cost, total_candidates)``.
        """
        uvals = _i64(uvals)
        spec = _i64(spec)
        n_layers = len(spec)
        in_out = np.empty((n_layers, 3), dtype=np.int64)
        out_out = np.empty((n_layers, 3), dtype=np.int64)
        relayout = np.empty(n_layers, dtype=np.int64)
        cost = np.empty(1, dtype=np.int64)
        total = self._lib.repro_map_network(
            _ptr(uvals), _ptr(spec), n_layers,
            ctypes.c_int64(row_limit), ctypes.c_int64(col_limit),
            _ptr(in_out), _ptr(out_out), _ptr(relayout), _ptr(cost),
        )
        if total < 0:
            raise MappingError(
                f"map-network kernel rejected its inputs (code {int(total)})"
            )
        return in_out, out_out, relayout, int(cost[0]), int(total)

    # -- sim ------------------------------------------------------------------

    def flexflow_store_sums(
        self,
        n_total: np.ndarray,
        k_total: np.ndarray,
        s_total: np.ndarray,
        m_total: np.ndarray,
        tn: np.ndarray,
        ti: np.ndarray,
        tj: np.ndarray,
        tr: np.ndarray,
        tc: np.ndarray,
        cap: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(kernel_bus, kernel_misses)`` per configuration."""
        cols = [_i64(x) for x in (
            n_total, k_total, s_total, m_total, tn, ti, tj, tr, tc, cap
        )]
        batch = len(cols[0])
        bus = np.empty(batch, dtype=np.int64)
        misses = np.empty(batch, dtype=np.int64)
        self._lib.repro_flexflow_store_sums(
            batch, *(_ptr(col) for col in cols), _ptr(bus), _ptr(misses)
        )
        return bus, misses

    # -- faults ---------------------------------------------------------------

    def surviving_structures(
        self, flags: np.ndarray, n_struct: int, size: int
    ) -> int:
        """Structures (row-major groups of ``size`` PEs) with no dead member."""
        flags = np.ascontiguousarray(flags, dtype=np.uint8)
        return int(
            self._lib.repro_surviving_structures(
                flags.ctypes.data_as(_U8_P), len(flags), n_struct, size
            )
        )


def load(build_dir: Optional[Path] = None) -> Tuple[CExtKernels, bool]:
    """Build (if needed) and bind the C backend; ``(suite, freshly_built)``."""
    so_path, built = build_library(build_dir)
    try:
        lib = _bind(ctypes.CDLL(str(so_path)))
    except OSError as exc:
        raise KernelBuildError(f"cannot load {so_path}: {exc}") from exc
    return CExtKernels(lib), built
