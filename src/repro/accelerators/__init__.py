"""The four architecture models: Systolic, 2D-Mapping, Tiling, FlexFlow."""

from typing import Optional

from repro.accelerators.base import (
    Accelerator,
    LayerResult,
    NetworkResult,
    dram_words_with_reload,
)
from repro.accelerators.flexflow import FlexFlowAccelerator
from repro.accelerators.mapping2d import Mapping2DAccelerator
from repro.accelerators.pipeline import PipelinedSystolicAccelerator
from repro.accelerators.rowstationary import RowStationaryAccelerator
from repro.accelerators.systolic import SystolicAccelerator
from repro.accelerators.tiling import TilingAccelerator
from repro.arch.config import ArchConfig
from repro.errors import ConfigurationError


def make_accelerator(
    kind: str, config: Optional[ArchConfig] = None, *, workload_name: str = ""
) -> Accelerator:
    """Factory over the four architecture kinds.

    ``workload_name`` lets the systolic baseline pick the paper's
    per-workload array size (11 for AlexNet, 6 otherwise).
    """
    if kind == "systolic":
        return SystolicAccelerator.for_workload(workload_name, config)
    if kind == "mapping2d":
        return Mapping2DAccelerator(config)
    if kind == "tiling":
        return TilingAccelerator(config)
    if kind == "flexflow":
        return FlexFlowAccelerator(config)
    if kind == "rowstationary":
        return RowStationaryAccelerator(config)
    if kind == "pipeline":
        return PipelinedSystolicAccelerator.for_workload(workload_name, config)
    raise ConfigurationError(
        f"unknown architecture kind {kind!r}; known: systolic, mapping2d,"
        f" tiling, flexflow, rowstationary, pipeline"
    )


__all__ = [
    "Accelerator",
    "LayerResult",
    "NetworkResult",
    "dram_words_with_reload",
    "SystolicAccelerator",
    "PipelinedSystolicAccelerator",
    "RowStationaryAccelerator",
    "Mapping2DAccelerator",
    "TilingAccelerator",
    "FlexFlowAccelerator",
    "make_accelerator",
]
