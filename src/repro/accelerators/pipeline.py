"""Configurable-pipelining systolic variant (ArrayFlex-style).

The classic systolic baseline (:mod:`repro.accelerators.systolic`) pays a
pipeline fill of ``W_in * min(K, Ta)`` cycles on *every* pass of every
(input map, output map) pair: the array drains completely between passes
and the operand wavefront must be re-established from scratch.

ArrayFlex-style *configurable pipelining* makes the inter-stage latches
transparent on demand, so while the tail of one pass drains, the head of
the next pass is already streaming in behind it.  The operand wavefront
is established **once per layer** instead of once per pass:

* systolic:  ``cycles = rounds * passes * (S^2 + fill)``
* pipeline:  ``cycles = rounds * passes * S^2 + fill``

with ``passes = ceil(K/Ta)^2``, ``fill = W_in * min(K, Ta)``,
``rounds = ceil(M*N / arrays)`` — same pass structure, same PE budget,
same traffic shape; only the fill recurrence changes.  The win is large
exactly where fill rivals the drain time: big input maps with few
(m, n) pairs per array (AlexNet C1 is the poster child), and it fades on
deep, small-map layers where ``rounds`` dominates and the single fill
amortizes to noise.  That asymmetry is what makes it a useful fifth
comparison point for the per-layer dataflow DSE
(:mod:`repro.dse.perlayer`).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.accelerators.base import Accelerator, LayerResult, dram_words_with_reload
from repro.arch.area import pe_area_mm2
from repro.arch.config import ArchConfig
from repro.arch.power import ActivityCounts
from repro.dataflow.unrolling import ceil_div
from repro.errors import ConfigurationError
from repro.faults.impact import systolic_retention
from repro.nn.layers import ConvLayer


def pipeline_layer_cycles(
    layer: ConvLayer, array_size: int, num_pes: int
) -> int:
    """Healthy-array cycle count — the closed form the DSE solver scores.

    Kept as a module-level pure-int helper so the per-layer DP
    (:mod:`repro.dse.perlayer`) and the accelerator model cannot drift.
    """
    ta = array_size
    arrays = max(1, num_pes // (ta * ta))
    passes = ceil_div(layer.kernel, ta) ** 2
    fill = layer.in_size * min(layer.kernel, ta)
    pairs = layer.out_maps * layer.in_maps
    rounds = ceil_div(pairs, arrays)
    return rounds * passes * layer.out_size**2 + fill


class PipelinedSystolicAccelerator(Accelerator):
    """Systolic arrays with configurable (transparent) pipelining.

    Args:
        config: shared sizing (PE budget = ``config.num_pes``).
        array_size: ``Ta`` — one array is ``Ta x Ta``.  Same per-workload
            sizing convention as the systolic baseline (11 for AlexNet,
            6 otherwise) via :meth:`for_workload`; the per-layer DSE
            treats ``Ta`` as a runtime-reconfigurable parameter instead.
    """

    kind = "pipeline"
    IDLE_ACTIVITY = 0.80  # transparent latches clock-gate drained stages

    def __init__(
        self, config: Optional[ArchConfig] = None, *, array_size: int = 6
    ) -> None:
        super().__init__(config)
        if array_size <= 0:
            raise ConfigurationError(f"array_size must be positive, got {array_size}")
        self.array_size = array_size

    @classmethod
    def for_workload(
        cls, workload_name: str, config: Optional[ArchConfig] = None
    ) -> "PipelinedSystolicAccelerator":
        """Same per-workload sizing as the systolic baseline."""
        array_size = 11 if workload_name == "AlexNet" else 6
        return cls(config, array_size=array_size)

    @property
    def num_arrays(self) -> int:
        """Arrays fitting the shared PE budget."""
        return max(1, self.config.num_pes // (self.array_size**2))

    def simulate_layer(self, layer: ConvLayer, **_context) -> LayerResult:
        ta = self.array_size
        arrays = self.num_arrays
        passes = ceil_div(layer.kernel, ta) ** 2
        fill = layer.in_size * min(layer.kernel, ta)
        pairs = layer.out_maps * layer.in_maps
        rounds = ceil_div(pairs, arrays)
        cycles = self._degrade_cycles(
            pipeline_layer_cycles(layer, ta, self.config.num_pes), layer
        )

        macs = layer.macs
        total_pes = arrays * ta * ta
        utilization = macs / (cycles * total_pes)

        # Traffic is the systolic baseline's: the same operands stream
        # through the same wavefront, only the fill recurrence differs.
        sharing = min(arrays, layer.out_maps)
        input_words = (
            pairs * passes * layer.in_size**2 + sharing - 1
        ) // sharing
        kernel_words = layer.num_kernel_words
        output_writes = pairs * layer.out_size**2
        partial_reads = layer.out_maps * (layer.in_maps - 1) * layer.out_size**2

        active = self._active_pe_cycles(macs, cycles, total_pes)
        fifo_accesses = 2 * pairs * layer.out_size**2 * min(layer.kernel, ta)
        # Per active PE cycle: synapse register read + partial-sum update,
        # plus one transparency-configuration latch write per stage per
        # pass (the mechanism that elides the refill).
        register_accesses = 3 * active + passes * ta * ta

        pitch = math.sqrt(pe_area_mm2(self.kind, self.config))
        span = ta * pitch
        bus_word_mm = input_words * span

        dram = dram_words_with_reload(layer, self.config)

        counts = ActivityCounts(
            cycles=cycles,
            mac_ops=macs,
            active_pe_cycles=active,
            neuron_buffer_reads=input_words,
            neuron_buffer_writes=output_writes,
            neuron_buffer_partial_reads=partial_reads,
            kernel_buffer_reads=kernel_words,
            fifo_accesses=fifo_accesses,
            register_accesses=register_accesses,
            bus_word_mm=bus_word_mm,
            dram_accesses=dram,
        )
        return LayerResult(
            kind=self.kind,
            layer=layer,
            cycles=cycles,
            utilization=utilization,
            counts=counts,
        )

    def fault_retention(self) -> float:
        """Same structural sensitivity as the systolic baseline."""
        mask = self.config.pe_mask
        if mask is None or mask.is_healthy:
            return 1.0
        return systolic_retention(mask, self.array_size)

    def spatial_utilization(self, layer: ConvLayer) -> float:
        """Kernel coverage of the array — pipelining does not change it."""
        ta = self.array_size
        passes = ceil_div(layer.kernel, ta) ** 2
        return layer.kernel**2 / (ta**2 * passes)
