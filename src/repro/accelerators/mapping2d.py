"""2D-Mapping baseline (SFMNSS): ShiDianNao-style neuron-parallel array.

Section 3.2's dataflow: a ``D x D`` PE array maps one ``D x D`` block of
output neurons of a single output feature map; each cycle one synapse is
broadcast to every PE, neurons shift between neighbours through per-PE
FIFOs, and every PE accumulates its own output neuron.  A block finishes
after ``K^2`` cycles per input map.

Model per layer: ``cycles = M * ⌈S/D⌉^2 * N * K^2``; spatial utilization is
the edge-block occupancy ``S^2 / (⌈S/D⌉^2 * D^2)`` (the Table 3 closed
form).  Input regions are re-read once per *output* map (the paper's noted
weakness), synapses are broadcast once per cycle, and neuron movement rides
the per-PE FIFOs.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.accelerators.base import Accelerator, LayerResult, dram_words_with_reload
from repro.arch.area import pe_area_mm2
from repro.arch.config import ArchConfig
from repro.arch.power import ActivityCounts
from repro.dataflow.unrolling import ceil_div
from repro.errors import ConfigurationError
from repro.faults.impact import row_kill_retention
from repro.nn.layers import ConvLayer


def mapping2d_layer_cycles(layer: ConvLayer, block_size: int) -> int:
    """Healthy-array cycle count — the closed form the DSE solver scores.

    Module-level pure-int helper so the per-layer DP
    (:mod:`repro.dse.perlayer`) and the accelerator model cannot drift.
    Includes the inter-block switch bubble
    (:attr:`Mapping2DAccelerator.BLOCK_SWITCH_OVERHEAD`).
    """
    blocks = ceil_div(layer.out_size, block_size) ** 2
    return layer.out_maps * blocks * (
        layer.in_maps * layer.kernel**2 + block_size
    )


class Mapping2DAccelerator(Accelerator):
    """The ShiDianNao-style 2D-Mapping baseline.

    Args:
        config: shared sizing; the array is ``config.array_dim`` squared.
        block_size: override the output-block edge (defaults to the array
            dimension; Table 3's layer-optimized variants set it to the
            optimized layer's ``S``).
    """

    kind = "mapping2d"
    IDLE_ACTIVITY = 0.85
    #: Extra cycles per output-block visit: draining the block's finished
    #: neurons and pre-loading the next block's initial window through the
    #: edge FIFOs (the inter-block bubble of the shift dataflow).
    BLOCK_SWITCH_OVERHEAD = True

    def __init__(
        self, config: Optional[ArchConfig] = None, *, block_size: Optional[int] = None
    ) -> None:
        super().__init__(config)
        if block_size is not None and block_size <= 0:
            raise ConfigurationError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size or self.config.array_dim

    def simulate_layer(self, layer: ConvLayer, **_context) -> LayerResult:
        block = self.block_size
        blocks = ceil_div(layer.out_size, block) ** 2
        if self.BLOCK_SWITCH_OVERHEAD:
            healthy = mapping2d_layer_cycles(layer, block)
        else:
            healthy = layer.out_maps * blocks * layer.in_maps * layer.kernel**2
        cycles = self._degrade_cycles(healthy, layer)

        macs = layer.macs
        total_pes = block * block
        utilization = macs / (cycles * total_pes)

        # Input regions: each output block needs a (block + K - 1)^2 input
        # halo per input map, re-read for every output map.
        halo = min(layer.in_size, block + layer.kernel - 1)
        input_words = layer.out_maps * layer.in_maps * blocks * halo**2
        kernel_words = layer.out_maps * layer.in_maps * layer.kernel**2
        output_writes = layer.out_maps * layer.out_size**2
        partial_reads = 0  # PEs accumulate across input maps locally

        active = self._active_pe_cycles(macs, cycles, total_pes)
        # Neuron shifting: ~2 FIFO events per PE-edge movement, one column
        # or row of the active block moves per cycle.
        active_edge = min(layer.out_size, block)
        fifo_accesses = 2 * cycles * active_edge
        register_accesses = 2 * active  # partial-sum register read+write

        pitch = math.sqrt(pe_area_mm2(self.kind, self.config))
        span = block * pitch
        # Synapse broadcast spans the whole array every cycle; inputs enter
        # along one edge.
        bus_word_mm = kernel_words * span + input_words * span / 2

        dram = dram_words_with_reload(
            layer, self.config, input_reread_factor=min(layer.out_maps, 4)
        )

        counts = ActivityCounts(
            cycles=cycles,
            mac_ops=macs,
            active_pe_cycles=active,
            neuron_buffer_reads=input_words,
            neuron_buffer_writes=output_writes,
            neuron_buffer_partial_reads=partial_reads,
            kernel_buffer_reads=kernel_words,
            fifo_accesses=fifo_accesses,
            register_accesses=register_accesses,
            bus_word_mm=bus_word_mm,
            dram_accesses=dram,
        )
        return LayerResult(
            kind=self.kind,
            layer=layer,
            cycles=cycles,
            utilization=utilization,
            counts=counts,
        )

    def fault_retention(self) -> float:
        """A dead PE severs its row's neuron shift chain — row kill."""
        mask = self.config.pe_mask
        if mask is None or mask.is_healthy:
            return 1.0
        return row_kill_retention(mask)

    def spatial_utilization(self, layer: ConvLayer) -> float:
        """The Table 3 closed form: ``S^2 / (⌈S/D⌉^2 * D^2)``."""
        block = self.block_size
        blocks = ceil_div(layer.out_size, block) ** 2
        return layer.out_size**2 / (blocks * block**2)
