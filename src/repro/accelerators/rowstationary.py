"""Row-Stationary baseline (Eyeriss-style), the paper's Table 7 comparator.

Section 7 discusses Eyeriss [4]: a 12 x 14 PE array where each PE holds
one *filter row* in its register file and slides it along one *input
row*, producing one partial-sum row; ``K`` vertically-adjacent PEs chain
their psum rows to finish one output row (a "PE set" is ``K`` rows tall
and one output-row wide).  Sets tile the array; different sets process
different output rows, and passes iterate over (filter, channel) pairs.

Model summary (one MAC per PE per cycle):

* a PE computes its (filter row, output row) pair in ``S * K`` cycles
  (S output elements, K MACs each), so one *column job* — a K-PE chain
  finishing one output row of one (m, n) pair — takes ``S * K`` cycles
  on ``K`` PEs at full internal utilization;
* the array runs ``cols * floor(rows/K)`` column jobs concurrently,
  pooled across output rows and (m, n) pairs (kernels taller than the
  array fold into ``ceil(K/rows)`` sub-passes);
* total jobs = ``M * N * S``.

Data reuse follows Eyeriss's design point: filters are read once into the
register files, input rows are broadcast diagonally (each unique input
word read once per output-map pass group), and psums stay on-array across
the ``K``-row chain, spilling once per (m, n) pair.

This is an *approximate qualitative comparator* — Eyeriss's actual
mapper (row folding/replication) is more sophisticated — kept faithful
enough to place RS between the rigid baselines and FlexFlow on the
paper's metrics, as Table 7's DRAM numbers suggest.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.accelerators.base import Accelerator, LayerResult, dram_words_with_reload
from repro.arch.config import ArchConfig
from repro.arch.power import ActivityCounts
from repro.dataflow.unrolling import ceil_div
from repro.errors import ConfigurationError
from repro.faults.impact import row_kill_retention
from repro.nn.layers import ConvLayer


class RowStationaryAccelerator(Accelerator):
    """Eyeriss-style row-stationary baseline.

    Args:
        config: shared sizing; the array defaults to Eyeriss's 12 x 14
            when ``config.array_dim`` is 16 (the 168-PE published design),
            otherwise to ``(array_dim - 2) x array_dim`` to track scale.
    """

    kind = "rowstationary"
    IDLE_ACTIVITY = 0.45  # spad-equipped PEs gate better than bare fabrics

    def __init__(
        self,
        config: Optional[ArchConfig] = None,
        *,
        array_rows: Optional[int] = None,
        array_cols: Optional[int] = None,
    ) -> None:
        super().__init__(config)
        dim = self.config.array_dim
        self.array_rows = array_rows if array_rows is not None else max(1, dim - 4)
        self.array_cols = array_cols if array_cols is not None else max(1, dim - 2)
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ConfigurationError("array dimensions must be positive")

    @property
    def total_pes(self) -> int:
        return self.array_rows * self.array_cols

    def simulate_layer(self, layer: ConvLayer, **_context) -> LayerResult:
        k = layer.kernel
        s = layer.out_size
        folds = ceil_div(k, self.array_rows)
        set_height = min(k, self.array_rows)
        sets_vertical = max(1, self.array_rows // set_height)
        # One "column job" = one output row of one (m, n) pair: K chained
        # PEs for S*K cycles.  The array runs cols * sets_vertical jobs
        # concurrently, pooled across output rows and (m, n) pairs.
        concurrent_jobs = self.array_cols * sets_vertical
        jobs = layer.out_maps * layer.in_maps * s
        cycles = self._degrade_cycles(
            ceil_div(jobs, concurrent_jobs) * folds * s * k, layer
        )

        macs = layer.macs
        utilization = macs / (cycles * self.total_pes)
        active = self._active_pe_cycles(macs, cycles, self.total_pes)

        # Traffic: filters once; inputs once per output map (diagonal
        # broadcast shares within a pass); psums spill once per (m, n).
        kernel_words = layer.num_kernel_words
        input_words = layer.num_input_words * layer.out_maps
        output_writes = layer.out_maps * layer.in_maps * s * s
        partial_reads = layer.out_maps * (layer.in_maps - 1) * s * s

        # Each MAC reads its filter word and input word from the PE spad.
        ls_reads = 2 * macs
        ls_writes = kernel_words + input_words

        from repro.arch.area import pe_area_mm2

        pitch = math.sqrt(pe_area_mm2(self.kind, self.config))
        span = self.array_cols * pitch
        bus_word_mm = input_words * span / 2 + kernel_words * span / 2

        dram = dram_words_with_reload(layer, self.config)

        counts = ActivityCounts(
            cycles=cycles,
            mac_ops=macs,
            active_pe_cycles=active,
            neuron_buffer_reads=input_words,
            neuron_buffer_writes=output_writes,
            neuron_buffer_partial_reads=partial_reads,
            kernel_buffer_reads=kernel_words,
            local_store_reads=ls_reads,
            local_store_writes=ls_writes,
            bus_word_mm=bus_word_mm,
            dram_accesses=dram,
        )
        return LayerResult(
            kind=self.kind,
            layer=layer,
            cycles=cycles,
            utilization=utilization,
            counts=counts,
        )

    def fault_retention(self) -> float:
        """A dead PE breaks its row's diagonal psum chain — row kill."""
        mask = self.config.pe_mask
        if mask is None or mask.is_healthy:
            return 1.0
        return row_kill_retention(mask)
