"""Common accelerator interface and result records.

Every architecture model implements :class:`Accelerator`: given a CONV
layer (plus optional successor context), produce a :class:`LayerResult`
containing cycles, utilization, and the full
:class:`~repro.arch.power.ActivityCounts` event record.  Everything the
evaluation section reports — GOPS, power, energy, traffic volume, DRAM
accesses per op — derives from these records plus the technology model.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.arch.config import ArchConfig
from repro.arch.power import ActivityCounts, PowerReport, compute_power
from repro.cache import active_cache, config_payload, hash_payload, network_payload
from repro.dataflow.unrolling import ceil_div
from repro.errors import MappingError, SimulationError
from repro.nn.layers import ConvLayer, FCLayer, PoolLayer
from repro.nn.network import Network


@dataclass(frozen=True)
class LayerResult:
    """Execution record of one CONV layer on one architecture."""

    kind: str
    layer: ConvLayer
    cycles: int
    utilization: float
    counts: ActivityCounts

    @property
    def macs(self) -> int:
        return self.layer.macs

    @property
    def ops(self) -> int:
        return self.layer.ops

    def gops(self, frequency_hz: float) -> float:
        """Achieved performance in GOPS at the given clock."""
        if self.cycles == 0:
            return 0.0
        return self.ops / (self.cycles / frequency_hz) / 1e9


@dataclass(frozen=True)
class NetworkResult:
    """Execution record of a whole network's CONV layers."""

    kind: str
    network_name: str
    config: ArchConfig
    layers: Tuple[LayerResult, ...]

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(r.macs for r in self.layers)

    @property
    def total_ops(self) -> int:
        return sum(r.ops for r in self.layers)

    @property
    def counts(self) -> ActivityCounts:
        total = ActivityCounts()
        for result in self.layers:
            total = total + result.counts
        return total

    @property
    def overall_utilization(self) -> float:
        """PE-cycle utilization across the network: MACs / (cycles * PEs)."""
        cycles = self.total_cycles
        if cycles == 0:
            return 0.0
        return self.total_macs / (cycles * self.config.num_pes)

    @property
    def runtime_s(self) -> float:
        return self.total_cycles * self.config.technology.cycle_time_s

    @property
    def gops(self) -> float:
        """Achieved GOPS over the network's CONV layers."""
        runtime = self.runtime_s
        if runtime == 0:
            return 0.0
        return self.total_ops / runtime / 1e9

    @property
    def buffer_traffic_words(self) -> int:
        """The Figure 17 "volume of data transmission" metric."""
        return self.counts.buffer_words_total

    @property
    def dram_accesses(self) -> int:
        return self.counts.dram_accesses

    @property
    def dram_accesses_per_op(self) -> float:
        """Table 7's DRAM Acc/Op metric."""
        ops = self.total_ops
        if ops == 0:
            return 0.0
        return self.dram_accesses / ops

    def power_report(self) -> PowerReport:
        """Energy/power for the whole run (chip power, DRAM separate)."""
        return compute_power(self.counts, self.kind, self.config)

    @property
    def power_mw(self) -> float:
        return self.power_report().average_power_mw

    @property
    def energy_uj(self) -> float:
        return self.power_report().total_energy_uj

    @property
    def gops_per_watt(self) -> float:
        """Figure 18(a)'s power-efficiency metric."""
        power_w = self.power_mw / 1e3
        if power_w == 0:
            return 0.0
        return self.gops / power_w

    def by_layer_name(self) -> Dict[str, LayerResult]:
        return {r.layer.name: r for r in self.layers}


@lru_cache(maxsize=4096)
def _simulate_request_key(
    kind: str,
    identity_items: Tuple[Tuple[str, Any], ...],
    config: ArchConfig,
    network: Network,
    include_fc: bool,
) -> str:
    """Persistent-cache key for one simulation request, memoized by value.

    ``identity_items`` is the sorted item tuple of
    :meth:`Accelerator.cache_identity`; rebuilding the dict here keeps the
    hashed document identical to the uncached construction (canonical
    JSON sorts keys), while the memo spares repeated sweeps the
    dataclass-walk + SHA-256 cost per lookup.
    """
    return hash_payload(
        "simulate_network",
        {
            "kind": kind,
            "identity": dict(identity_items),
            "config": config_payload(config),
            "network": network_payload(network),
            "include_fc": include_fc,
        },
    )


class Accelerator(abc.ABC):
    """Abstract architecture model.

    Subclasses define ``kind`` and implement :meth:`simulate_layer`; the
    shared :meth:`simulate_network` walks a network's CONV layers (pooling
    runs on the 1-D pooling unit concurrently with the next layer's
    compute, so it adds pool-ALU activity but no critical-path cycles —
    the same assumption for every baseline).

    ``IDLE_ACTIVITY`` models how much dynamic energy an *unused* PE-cycle
    still burns, as a fraction of a useful one.  The rigid baselines keep
    their whole fabric streaming every cycle — systolic pipelines shift,
    2D arrays broadcast and shift, tiling adder trees churn — so their idle
    PEs toggle at roughly half activity; FlexFlow's logical grouping lets
    whole idle rows/columns be clock-gated, leaving only residual clock
    load.  This is the mechanism behind Figure 18's "highest power *and*
    best efficiency" result.
    """

    kind: str = "abstract"
    IDLE_ACTIVITY: float = 0.60

    def __init__(self, config: Optional[ArchConfig] = None) -> None:
        self.config = config or ArchConfig()

    def _active_pe_cycles(self, macs: int, cycles: int, total_pes: int) -> int:
        """Useful MAC cycles plus the idle fabric's residual toggling.

        Masked-dead PEs are power-gated: they contribute neither MACs nor
        idle toggling, so the toggling fabric shrinks by the mask's dead
        share of the overall PE budget.
        """
        mask = self.config.pe_mask
        if mask is not None and mask.num_dead:
            dead_share = int(round(total_pes * mask.num_dead / self.config.num_pes))
            total_pes = max(0, total_pes - dead_share)
        idle = max(0, cycles * total_pes - macs)
        return macs + int(self.IDLE_ACTIVITY * idle)

    # -- fault degradation ----------------------------------------------------

    def fault_retention(self) -> float:
        """Fraction of nominal throughput retained under ``config.pe_mask``.

        1.0 by default (healthy, or an architecture that reroutes around
        faults).  The rigid baselines override this with their
        structure-kill models (:mod:`repro.faults.impact`); FlexFlow keeps
        the default because its degradation comes out of the real mapping
        search over the live subgrid.
        """
        return 1.0

    def _degrade_cycles(self, cycles: int, layer: ConvLayer) -> int:
        """Cycles inflated by fault retention (surviving structures re-run
        the lost structures' share of the work serially)."""
        retention = self.fault_retention()
        if retention >= 1.0:
            return cycles
        if retention <= 0.0:
            raise SimulationError(
                f"{self.kind}: no compute structure survives the fault mask"
                f" for {layer.name}"
            )
        return int(math.ceil(cycles / retention))

    @abc.abstractmethod
    def simulate_layer(self, layer: ConvLayer, **context) -> LayerResult:
        """Execute one CONV layer analytically."""

    def simulate_fc_layer(self, layer: FCLayer) -> LayerResult:
        """Execute a fully-connected layer via the FC-as-1x1-CONV reduction.

        Every architecture's conv engine runs FC layers as a degenerate
        convolution (``N = in_neurons`` 1x1 inputs, ``M = out_neurons``
        1x1 outputs); FC performance is then governed purely by the
        feature-map-parallelism the architecture can muster — which is
        why FC layers are a worst case for the NP/SP-only baselines.
        """
        return self.simulate_layer(layer.as_conv())

    def cache_identity(self) -> Dict[str, Any]:
        """Instance state (beyond ``config``) that determines results.

        Part of the persistent-cache key for :meth:`simulate_network`.
        The default collects every non-``config`` instance attribute
        (scalar attrs verbatim, anything else by ``repr``), which covers
        the baselines' per-instance knobs — systolic ``array_size``,
        2D-Mapping ``block_size``, Tiling ``tm``/``tn`` — without each
        subclass having to remember the hook exists.
        """
        identity: Dict[str, Any] = {"class": type(self).__name__}
        for name, value in sorted(vars(self).items()):
            if name == "config":
                continue
            if isinstance(value, (int, float, str, bool, type(None))):
                identity[name] = value
            else:
                identity[name] = repr(value)
        return identity

    def simulate_network(
        self, network: Network, *, include_fc: bool = False
    ) -> NetworkResult:
        """Execute all CONV layers of a network (optionally FC too).

        The paper's evaluation is CONV-only (>90 % of compute); pass
        ``include_fc=True`` to append the classifier layers.

        Results are served from the persistent cache (:mod:`repro.cache`)
        when an identical request — same architecture kind, instance
        knobs, configuration, and network structure — was simulated
        before, by this process or any other sharing the store.
        """
        cache = active_cache()
        if cache is None:
            return self._simulate_network_uncached(
                network, include_fc=include_fc
            )
        identity = self.cache_identity()
        try:
            key = _simulate_request_key(
                self.kind,
                tuple(sorted(identity.items())),
                self.config,
                network,
                include_fc,
            )
        except TypeError:  # unhashable identity value / config / network
            key = hash_payload(
                "simulate_network",
                {
                    "kind": self.kind,
                    "identity": identity,
                    "config": config_payload(self.config),
                    "network": network_payload(network),
                    "include_fc": include_fc,
                },
            )
        stored = cache.get("simulate_network", key)
        if stored is not None:
            restored = self._network_result_from_payload(
                network, stored, include_fc=include_fc
            )
            if restored is not None:
                return restored
        result = self._simulate_network_uncached(network, include_fc=include_fc)
        cache.put("simulate_network", key, _network_result_payload(result))
        return result

    def _expected_conv_layers(
        self, network: Network, *, include_fc: bool
    ) -> List[ConvLayer]:
        """The layer objects a (cached) network result must cover, in order."""
        layers = [ctx.layer for ctx in network.conv_contexts()]
        if include_fc:
            layers.extend(fc.as_conv() for fc in network.fc_layers)
        return layers

    def _network_result_from_payload(
        self, network: Network, payload: Any, *, include_fc: bool
    ) -> Optional[NetworkResult]:
        """Rebuild a NetworkResult from cached counters, or ``None``.

        Layer objects come from re-walking the live network (they are in
        the cache key, so shapes are guaranteed to match); only the
        computed counters are trusted from disk.  Any structural mismatch
        or malformed entry falls back to simulating.
        """
        expected = self._expected_conv_layers(network, include_fc=include_fc)
        try:
            entries = payload["layers"]
            if len(entries) != len(expected):
                return None
            results = []
            for layer, entry in zip(expected, entries):
                if entry["name"] != layer.name:
                    return None
                results.append(
                    LayerResult(
                        kind=self.kind,
                        layer=layer,
                        cycles=int(entry["cycles"]),
                        utilization=float(entry["utilization"]),
                        counts=ActivityCounts(**entry["counts"]),
                    )
                )
        except (KeyError, TypeError, ValueError):
            return None
        return NetworkResult(
            kind=self.kind,
            network_name=network.name,
            config=self.config,
            layers=tuple(results),
        )

    def _simulate_network_uncached(
        self, network: Network, *, include_fc: bool = False
    ) -> NetworkResult:
        """The actual network walk (subclasses may override this)."""
        results: List[LayerResult] = []
        pool_ops = self._pool_ops_by_predecessor(network)
        for ctx in network.conv_contexts():
            result = self.simulate_layer(
                ctx.layer, tr_tc_bound=ctx.tr_tc_bound, network=network
            )
            extra_pool = pool_ops.get(ctx.layer.name, 0)
            if extra_pool:
                counts = result.counts + ActivityCounts(pool_ops=extra_pool)
                result = LayerResult(
                    kind=result.kind,
                    layer=result.layer,
                    cycles=result.cycles,
                    utilization=result.utilization,
                    counts=counts,
                )
            results.append(result)
        if include_fc:
            for fc in network.fc_layers:
                results.append(self.simulate_fc_layer(fc))
        if not results:
            raise MappingError(f"network {network.name!r} has no CONV layers")
        return NetworkResult(
            kind=self.kind,
            network_name=network.name,
            config=self.config,
            layers=tuple(results),
        )

    @staticmethod
    def _pool_ops_by_predecessor(network: Network) -> Dict[str, int]:
        """Attribute each POOL layer's ops to the CONV layer feeding it."""
        pool_ops: Dict[str, int] = {}
        previous_conv: Optional[str] = None
        for layer in network.layers:
            if isinstance(layer, ConvLayer):
                previous_conv = layer.name
            elif isinstance(layer, PoolLayer) and previous_conv is not None:
                pool_ops[previous_conv] = pool_ops.get(previous_conv, 0) + layer.ops
        return pool_ops


def _network_result_payload(result: NetworkResult) -> Dict[str, Any]:
    """A NetworkResult's computed counters as a JSON-compatible dict."""
    return {
        "layers": [
            {
                "name": r.layer.name,
                "cycles": r.cycles,
                "utilization": r.utilization,
                "counts": dataclasses.asdict(r.counts),
            }
            for r in result.layers
        ],
    }


def dram_words_with_reload(
    layer: ConvLayer, config: ArchConfig, *, input_reread_factor: int = 1
) -> int:
    """Off-chip words for one layer under a simple reload model.

    Unique inputs, kernels, and outputs each cross DRAM once; when the
    kernel tensor exceeds the kernel buffer, the cheaper of (re-reading
    inputs per kernel chunk) and (re-reading kernels per input chunk) is
    charged — the standard two-level tiling bound.  ``input_reread_factor``
    lets architectures without input reuse (e.g. Tiling re-streaming inputs
    per output-map tile) declare their multiplier.
    """
    inputs = layer.num_input_words * max(1, input_reread_factor)
    kernels = layer.num_kernel_words
    outputs = layer.num_output_words
    kernel_capacity = config.kernel_buffer_words
    neuron_capacity = config.neuron_buffer_words
    if kernels <= kernel_capacity:
        return inputs + kernels + outputs
    kernel_rounds = ceil_div(kernels, kernel_capacity)
    input_rounds = ceil_div(layer.num_input_words, neuron_capacity)
    reread_inputs = inputs * kernel_rounds + kernels
    reread_kernels = kernels * input_rounds + inputs
    return min(reread_inputs, reread_kernels) + outputs
