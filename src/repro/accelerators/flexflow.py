"""FlexFlow accelerator model: mapper-driven MFMNMS execution.

Cycles come straight from the chosen unrolling factors (one unrolled tile
per cycle, Section 4.2), utilization from Eqs. 2-3, and traffic from the
RA/RS/IADP/IPDR reuse structure:

* **neuron buffer reads** — each input word is broadcast onto its vertical
  CDB once per output-map tile group (``⌈M/Tm⌉`` times): within a group
  residence, RS preloading plus the per-PE neuron stores serve every reuse
  locally.
* **kernel buffer reads** — each synapse is read once (IPDR replicates it
  over the free horizontal-bus bandwidth instead of re-reading).
* **output writes** — once per output neuron: a PE row accumulates its
  neuron's partial sums in place across the intra-row iterations, so no
  partial-sum round-trips unless the mapper broke inter-layer coupling
  (re-layout traffic is charged separately).
* **local stores** — every MAC reads one neuron and one synapse word from
  the PE's stores; store writes follow the broadcast/replication counts.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.accelerators.base import Accelerator, LayerResult, NetworkResult, dram_words_with_reload
from repro.arch.area import pe_area_mm2
from repro.arch.power import ActivityCounts
from repro.dataflow.mapper import LayerMapping, map_layer, map_network
from repro.dataflow.placement import ipdr_replication_factor
from repro.dataflow.unrolling import ceil_div
from repro.nn.layers import ConvLayer
from repro.nn.network import Network


class FlexFlowAccelerator(Accelerator):
    """The paper's architecture, driven by the Section 5 mapper.

    Idle rows/columns outside the active logical groups are clock-gated
    (the grouping makes them statically known per layer), so idle PEs cost
    only residual clock load.
    """

    kind = "flexflow"
    IDLE_ACTIVITY = 0.08

    def simulate_layer(self, layer: ConvLayer, **context) -> LayerResult:
        """Execute one layer.

        Accepts an optional precomputed ``mapping`` (from
        :func:`~repro.dataflow.mapper.map_network`) so network runs use the
        jointly-optimized factors; standalone calls fall back to the greedy
        per-layer mapper with the provided ``tr_tc_bound``.
        """
        mapping: Optional[LayerMapping] = context.get("mapping")
        if mapping is None:
            mapping = map_layer(
                layer,
                self.config.array_dim,
                tr_tc_bound=context.get("tr_tc_bound"),
                mask=self.config.pe_mask,
            )
        return self._result_from_mapping(mapping)

    def _simulate_network_uncached(
        self, network: Network, *, include_fc: bool = False
    ) -> NetworkResult:
        """Execute a network using the joint (DP) mapping.

        The persistent-cache wrapper lives in the base class's
        :meth:`~repro.accelerators.base.Accelerator.simulate_network`.
        """
        net_mapping = map_network(
            network, self.config.array_dim, mask=self.config.pe_mask
        )
        by_name: Dict[str, LayerMapping] = net_mapping.by_layer_name()
        pool_ops = self._pool_ops_by_predecessor(network)
        results = []
        for ctx in network.conv_contexts():
            mapping = by_name[ctx.layer.name]
            result = self._result_from_mapping(mapping)
            extra_pool = pool_ops.get(ctx.layer.name, 0)
            if extra_pool:
                result = LayerResult(
                    kind=result.kind,
                    layer=result.layer,
                    cycles=result.cycles,
                    utilization=result.utilization,
                    counts=result.counts + ActivityCounts(pool_ops=extra_pool),
                )
            results.append(result)
        if include_fc:
            for fc in network.fc_layers:
                results.append(self.simulate_fc_layer(fc))
        return NetworkResult(
            kind=self.kind,
            network_name=network.name,
            config=self.config,
            layers=tuple(results),
        )

    # -- internals ------------------------------------------------------------

    def _result_from_mapping(self, mapping: LayerMapping) -> LayerResult:
        layer = mapping.layer
        factors = mapping.factors
        dim = self.config.array_dim
        cycles = mapping.total_cycles
        macs = layer.macs

        m_groups = ceil_div(layer.out_maps, factors.tm)
        input_words = layer.num_input_words * m_groups
        kernel_words = layer.num_kernel_words
        output_writes = layer.num_output_words
        # Re-layout traffic when inter-layer coupling was broken: one
        # read + write pass of the input volume (mapper charged the cycles).
        relayout_words = (
            2 * layer.num_input_words if mapping.relayout_cycles else 0
        )

        # Local stores: one neuron + one synapse read per MAC; writes follow
        # the CDB deliveries.  A broadcast neuron is latched by the active
        # rows of its column that will consume it; a kernel word is latched
        # once per PE row of its group (the IPDR copies — within a row only
        # the residue-class column stores it).
        ls_reads = 2 * macs
        rows_active = factors.column_occupancy
        ls_writes = (
            input_words * min(dim, rows_active)
            + kernel_words * ipdr_replication_factor(factors)
        )

        pitch = math.sqrt(pe_area_mm2(self.kind, self.config))
        span = dim * pitch
        replication = ipdr_replication_factor(factors)
        bus_word_mm = (
            input_words * span / 2  # vertical CDB, average half-span
            + kernel_words * replication * span / 2  # horizontal CDB + IPDR
        )

        dram = dram_words_with_reload(layer, self.config)

        active = self._active_pe_cycles(macs, cycles, dim * dim)
        counts = ActivityCounts(
            cycles=cycles,
            mac_ops=macs,
            active_pe_cycles=active,
            neuron_buffer_reads=input_words,
            neuron_buffer_writes=output_writes + relayout_words // 2,
            neuron_buffer_partial_reads=relayout_words // 2,
            kernel_buffer_reads=kernel_words,
            local_store_reads=ls_reads,
            local_store_writes=ls_writes,
            bus_word_mm=bus_word_mm,
            dram_accesses=dram,
        )
        return LayerResult(
            kind=self.kind,
            layer=layer,
            cycles=cycles,
            utilization=mapping.utilization.ut,
            counts=counts,
        )
