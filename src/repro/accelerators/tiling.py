"""Tiling baseline (MFSNSS): DianNao-style feature-map-parallel engine.

Section 3.3's dataflow: ``Tm`` PE clusters each hold ``Tn`` multipliers and
an adder tree; every cycle ``Tn`` input neurons and ``Tm * Tn`` synapses
are loaded, producing one partial output neuron per cluster.  A neuron
completes after ``K^2`` cycles.  The evaluation configuration unrolls
``<Tm=16, Tn=16>``.

Model per layer: ``cycles = ⌈M/Tm⌉ * ⌈N/Tn⌉ * S^2 * K^2``; utilization is
``M*N / (⌈M/Tm⌉*⌈N/Tn⌉*Tm*Tn)`` (the Table 3 closed form).  Because the
architecture has no local storage, synapses are re-loaded *every cycle*
(one word per active multiplier lane) — the huge Figure 17 traffic — and
input neurons are re-read for every output-map tile.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.accelerators.base import Accelerator, LayerResult, dram_words_with_reload
from repro.arch.area import pe_area_mm2
from repro.arch.config import ArchConfig
from repro.arch.power import ActivityCounts
from repro.dataflow.unrolling import ceil_div
from repro.errors import ConfigurationError
from repro.faults.impact import tiling_retention
from repro.nn.layers import ConvLayer


def tiling_layer_cycles(layer: ConvLayer, tm: int, tn: int) -> int:
    """Healthy-array cycle count — the closed form the DSE solver scores.

    Module-level pure-int helper so the per-layer DP
    (:mod:`repro.dse.perlayer`) and the accelerator model cannot drift.
    """
    m_tiles = ceil_div(layer.out_maps, tm)
    n_tiles = ceil_div(layer.in_maps, tn)
    return m_tiles * n_tiles * layer.out_size**2 * layer.kernel**2


class TilingAccelerator(Accelerator):
    """The DianNao-style tiling baseline.

    Args:
        config: shared sizing; ``Tm = Tn = config.array_dim`` by default.
        tm, tn: explicit tile factors (Table 3's layer-optimized variants).
    """

    kind = "tiling"
    IDLE_ACTIVITY = 0.70

    def __init__(
        self,
        config: Optional[ArchConfig] = None,
        *,
        tm: Optional[int] = None,
        tn: Optional[int] = None,
    ) -> None:
        super().__init__(config)
        for name, value in (("tm", tm), ("tn", tn)):
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        self.tm = tm if tm is not None else self.config.array_dim
        self.tn = tn if tn is not None else self.config.array_dim

    def simulate_layer(self, layer: ConvLayer, **_context) -> LayerResult:
        m_tiles = ceil_div(layer.out_maps, self.tm)
        n_tiles = ceil_div(layer.in_maps, self.tn)
        cycles = self._degrade_cycles(
            tiling_layer_cycles(layer, self.tm, self.tn), layer
        )

        macs = layer.macs
        total_pes = self.tm * self.tn
        utilization = macs / (cycles * total_pes)

        # Per cycle the active lanes load min(N, Tn) neurons and
        # min(M, Tm) * min(N, Tn) synapses; over the layer that integrates
        # to the closed forms below.  No storage -> no reuse.
        input_words = m_tiles * layer.in_maps * layer.out_size**2 * layer.kernel**2
        kernel_words = macs  # one synapse word per MAC: zero reuse
        output_writes = layer.out_maps * layer.out_size**2 * n_tiles
        partial_reads = layer.out_maps * layer.out_size**2 * (n_tiles - 1)

        active = self._active_pe_cycles(macs, cycles, total_pes)
        register_accesses = 2 * active
        pitch = math.sqrt(pe_area_mm2(self.kind, self.config))
        span = self.tm * pitch
        # Neurons broadcast across all clusters; synapses on private feeds
        # of ~half-array average length.
        bus_word_mm = input_words * span + kernel_words * span / 2

        dram = dram_words_with_reload(
            layer, self.config, input_reread_factor=m_tiles
        )

        counts = ActivityCounts(
            cycles=cycles,
            mac_ops=macs,
            active_pe_cycles=active,
            neuron_buffer_reads=input_words,
            neuron_buffer_writes=output_writes,
            neuron_buffer_partial_reads=partial_reads,
            kernel_buffer_reads=kernel_words,
            register_accesses=register_accesses,
            bus_word_mm=bus_word_mm,
            dram_accesses=dram,
        )
        return LayerResult(
            kind=self.kind,
            layer=layer,
            cycles=cycles,
            utilization=utilization,
            counts=counts,
        )

    def fault_retention(self) -> float:
        """A dead lane corrupts its cluster's adder-tree sum — cluster kill."""
        mask = self.config.pe_mask
        if mask is None or mask.is_healthy:
            return 1.0
        return tiling_retention(mask, self.tm, self.tn)

    def spatial_utilization(self, layer: ConvLayer) -> float:
        """The Table 3 closed form: ``M*N / (⌈M/Tm⌉*⌈N/Tn⌉*Tm*Tn)``."""
        m_tiles = ceil_div(layer.out_maps, self.tm)
        n_tiles = ceil_div(layer.in_maps, self.tn)
        return (layer.out_maps * layer.in_maps) / (
            m_tiles * n_tiles * self.tm * self.tn
        )
