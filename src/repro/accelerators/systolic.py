"""Systolic baseline (SFSNMS): DC-CNN-style arrays of K x K pipelines.

Section 3.1's dataflow: a ``Ta x Ta`` PE array forms one deep pipeline
computing one (input map, output map) convolution; every cycle one input
neuron is broadcast to all PEs, partial outputs shift rightward/through
inter-row FIFOs, and one finished output neuron drains per cycle once the
pipeline is full.  The evaluation configuration (Section 6.1.1) uses
**seven** identical ``6 x 6`` arrays (``11 x 11`` for AlexNet) working in
a tiling-like mode across (m, n) pairs, matching the 256-PE scale of the
other baselines.

Model summary per (m, n) pair:

* ``⌈K/Ta⌉^2`` passes when the kernel exceeds the array,
* each pass costs ``S^2`` drain cycles plus a pipeline fill of roughly
  ``W_in * Ta`` cycles (the paper: depth ≈ input width x kernel size),
* pairs are distributed round-robin over the arrays (load imbalance shows
  up as idle rounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.accelerators.base import Accelerator, LayerResult, dram_words_with_reload
from repro.arch.area import pe_area_mm2
from repro.arch.config import ArchConfig
from repro.arch.power import ActivityCounts
from repro.dataflow.unrolling import ceil_div
from repro.errors import ConfigurationError
from repro.faults.impact import systolic_retention
from repro.nn.layers import ConvLayer


class SystolicAccelerator(Accelerator):
    """The DC-CNN-style systolic baseline.

    Args:
        config: shared sizing (PE budget = ``config.num_pes``).
        array_size: ``Ta`` — one systolic array is ``Ta x Ta``.  The paper
            uses 6 for the small workloads and 11 for AlexNet; pass the
            value explicitly or let :meth:`for_workload` choose.
    """

    kind = "systolic"
    IDLE_ACTIVITY = 0.85

    def __init__(
        self, config: Optional[ArchConfig] = None, *, array_size: int = 6
    ) -> None:
        super().__init__(config)
        if array_size <= 0:
            raise ConfigurationError(f"array_size must be positive, got {array_size}")
        self.array_size = array_size

    @classmethod
    def for_workload(
        cls, workload_name: str, config: Optional[ArchConfig] = None
    ) -> "SystolicAccelerator":
        """The paper's per-workload sizing: Ta=11 for AlexNet, else 6."""
        array_size = 11 if workload_name == "AlexNet" else 6
        return cls(config, array_size=array_size)

    @property
    def num_arrays(self) -> int:
        """Arrays fitting the shared PE budget (7 at the 16x16 scale)."""
        return max(1, self.config.num_pes // (self.array_size**2))

    def simulate_layer(self, layer: ConvLayer, **_context) -> LayerResult:
        ta = self.array_size
        arrays = self.num_arrays
        passes = ceil_div(layer.kernel, ta) ** 2
        fill = layer.in_size * min(layer.kernel, ta)
        cycles_per_pass = layer.out_size**2 + fill
        pairs = layer.out_maps * layer.in_maps
        rounds = ceil_div(pairs, arrays)
        cycles = self._degrade_cycles(rounds * passes * cycles_per_pass, layer)

        macs = layer.macs
        total_pes = arrays * ta * ta
        utilization = macs / (cycles * total_pes)

        # Traffic.  Arrays processing different output maps of the same
        # input map share the input broadcast; the sharing degree is how
        # many arrays can be fed the same input map at once.
        sharing = min(arrays, layer.out_maps)
        input_words = (
            pairs * passes * layer.in_size**2 + sharing - 1
        ) // sharing
        kernel_words = layer.num_kernel_words  # synapses loaded once/pair
        output_writes = pairs * layer.out_size**2
        partial_reads = layer.out_maps * (layer.in_maps - 1) * layer.out_size**2

        active = self._active_pe_cycles(macs, cycles, total_pes)
        # Each output neuron shifts through ~K pipeline stages and the
        # inter-row FIFOs; charge 2 FIFO events (push + pop) per row switch.
        fifo_accesses = 2 * pairs * layer.out_size**2 * min(layer.kernel, ta)
        # Per active PE cycle: synapse register read + partial-sum update.
        register_accesses = 3 * active

        pitch = math.sqrt(pe_area_mm2(self.kind, self.config))
        span = ta * pitch
        bus_word_mm = input_words * span  # input broadcast across the array

        dram = dram_words_with_reload(layer, self.config)

        counts = ActivityCounts(
            cycles=cycles,
            mac_ops=macs,
            active_pe_cycles=active,
            neuron_buffer_reads=input_words,
            neuron_buffer_writes=output_writes,
            neuron_buffer_partial_reads=partial_reads,
            kernel_buffer_reads=kernel_words,
            fifo_accesses=fifo_accesses,
            register_accesses=register_accesses,
            bus_word_mm=bus_word_mm,
            dram_accesses=dram,
        )
        return LayerResult(
            kind=self.kind,
            layer=layer,
            cycles=cycles,
            utilization=utilization,
            counts=counts,
        )

    def fault_retention(self) -> float:
        """A dead PE anywhere in a ``Ta x Ta`` array retires the array."""
        mask = self.config.pe_mask
        if mask is None or mask.is_healthy:
            return 1.0
        return systolic_retention(mask, self.array_size)

    def spatial_utilization(self, layer: ConvLayer) -> float:
        """Occupancy ignoring pipeline fill — the Table 3 closed form.

        ``K^2 / (Ta^2 * ⌈K/Ta⌉^2)``: how much of each array the kernel
        covers, accounting for multi-pass kernel tiling.
        """
        ta = self.array_size
        passes = ceil_div(layer.kernel, ta) ** 2
        return layer.kernel**2 / (ta**2 * passes)
