"""Filesystem helpers shared by the cache store, runner, and server.

:func:`atomic_write_text` is the one way this codebase publishes a file:
write to a uniquely named sibling temp file, then ``os.replace`` onto the
destination (atomic on POSIX).  Readers therefore observe either the old
content or the new content, never a partial write — the property the
persistent result cache, the runner's checkpoints, and the serve layer
all rely on.  The temp name embeds the pid *and* a process-wide counter
so two threads of one process publishing the same destination never race
on one temp file.

On any failure (serialization upstream, a full disk, ``os.replace`` into
a vanished directory) the temp file is unlinked before the exception
propagates, so an interrupted write never litters ``*.tmp`` files next
to the store.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

#: Process-wide uniquifier: two threads writing the same destination get
#: distinct temp files even though they share a pid.
_SEQUENCE = itertools.count()


def atomic_write_text(path: Path, text: str) -> None:
    """Atomically publish ``text`` at ``path`` (parents created).

    Either the write completes and ``path`` holds exactly ``text``, or it
    fails, the temp file is removed, and the original ``path`` (if any)
    is untouched.  Raises ``OSError`` on filesystem failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.{next(_SEQUENCE)}.tmp"
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
