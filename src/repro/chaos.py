"""Seeded fault-injection registry: chaos the control plane can rehearse.

PR 2 gave the *simulator* a fault story (stuck PEs, remapping); this
module gives the *serving/runner control plane* one.  A chaos spec in the
``REPRO_CHAOS`` environment variable arms named injection points inside
the worker pool, the resilient runner, and the persistent cache, so the
recovery machinery (retries, worker reaping, circuit breaking, cache
quarantine) can be demonstrated under real faults instead of hoped
about.  The variable crosses the ``spawn`` boundary with the
environment, which is how injected faults reach real worker processes.

Spec grammar (comma-separated, ``off``/empty disables everything)::

    REPRO_CHAOS="worker_crash=0.2,cache_corrupt=1@2,seed=7,hang_s=30"

* ``<point>=<rate>`` arms ``point`` with Bernoulli probability ``rate``
  (``0 <= rate <= 1``), drawn from a seeded per-point RNG;
* ``<point>=<rate>@<limit>`` additionally caps how many times the point
  may fire.  With ``REPRO_CHAOS_STATE`` set to a directory, the cap is
  shared *across processes* through locked counter files — the way a
  test says "exactly one worker hang, service-wide";
* ``seed=<int>`` seeds the schedule (default 0); ``hang_s=<float>`` and
  ``slow_io_s=<float>`` size the hang/slow-IO faults.

Injection points (:data:`KNOWN_POINTS`):

=================== ========================================================
``worker_crash``    a worker computation dies hard (``os._exit`` in a
                    spawn child; an exception in inline/thread mode)
``worker_hang``     a worker computation sleeps ``hang_s`` seconds
``slow_io``         a cache read/write stalls ``slow_io_s`` seconds
``cache_corrupt``   a just-published cache entry is truncated on disk
``client_disconnect`` client-side: the load harness drops a connection
                    mid-stream (the server never fires this itself)
=================== ========================================================

Rate-based schedules are salted with the pid so concurrent workers do
not crash in lockstep (a respawned worker must not deterministically
re-crash on its first task); limit-based schedules plus a shared state
directory give tests full determinism.  Injections count into the
metrics registry (``chaos.injections{point}``) in whichever process
fires them.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import REGISTRY

try:  # pragma: no cover - platform-dependent import
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Environment variables: the spec itself, and the (optional) directory
#: backing cross-process injection budgets.
ENV_SPEC = "REPRO_CHAOS"
ENV_STATE = "REPRO_CHAOS_STATE"

#: Every injection point a spec may arm.
KNOWN_POINTS = (
    "worker_crash",
    "worker_hang",
    "slow_io",
    "cache_corrupt",
    "client_disconnect",
)

#: Exit code of a chaos-crashed spawn worker (distinctive in supervisor
#: error messages, like the runner tests' deliberate ``os._exit(17)``).
CRASH_EXIT_CODE = 23

#: Default fault sizes, overridable in the spec.
DEFAULT_HANG_S = 30.0
DEFAULT_SLOW_IO_S = 0.05

_OFF = {"", "0", "off", "false", "no"}


class ChaosInjected(RuntimeError):
    """The failure an armed injection point raises in-process."""


@dataclass(frozen=True)
class ChaosRule:
    """One armed point: fire with ``rate``, at most ``limit`` times."""

    rate: float
    limit: Optional[int] = None


def _parse_rule(point: str, value: str) -> ChaosRule:
    rate_text, sep, limit_text = value.partition("@")
    try:
        rate = float(rate_text)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_SPEC}: bad rate {rate_text!r} for point {point!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(
            f"{ENV_SPEC}: rate for {point!r} must be in [0, 1], got {rate}"
        )
    limit: Optional[int] = None
    if sep:
        try:
            limit = int(limit_text)
        except ValueError:
            raise ConfigurationError(
                f"{ENV_SPEC}: bad limit {limit_text!r} for point {point!r}"
            ) from None
        if limit < 0:
            raise ConfigurationError(
                f"{ENV_SPEC}: limit for {point!r} must be >= 0, got {limit}"
            )
    return ChaosRule(rate=rate, limit=limit)


def parse_spec(
    spec: str,
) -> Tuple[Dict[str, ChaosRule], int, float, float]:
    """``(rules, seed, hang_s, slow_io_s)`` from one spec string.

    Raises :class:`~repro.errors.ConfigurationError` on unknown points
    or malformed values; an ``off``-ish spec returns no rules.
    """
    rules: Dict[str, ChaosRule] = {}
    seed = 0
    hang_s = DEFAULT_HANG_S
    slow_io_s = DEFAULT_SLOW_IO_S
    if spec.strip().lower() in _OFF:
        return rules, seed, hang_s, slow_io_s
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        name = name.strip()
        if not sep:
            raise ConfigurationError(
                f"{ENV_SPEC}: expected 'name=value', got {part!r}"
            )
        if name == "seed":
            try:
                seed = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"{ENV_SPEC}: bad seed {value!r}"
                ) from None
        elif name in ("hang_s", "slow_io_s"):
            try:
                parsed = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"{ENV_SPEC}: bad {name} {value!r}"
                ) from None
            if parsed < 0:
                raise ConfigurationError(
                    f"{ENV_SPEC}: {name} must be >= 0, got {parsed}"
                )
            if name == "hang_s":
                hang_s = parsed
            else:
                slow_io_s = parsed
        elif name in KNOWN_POINTS:
            rules[name] = _parse_rule(name, value.strip())
        else:
            raise ConfigurationError(
                f"{ENV_SPEC}: unknown injection point {name!r};"
                f" known: {', '.join(KNOWN_POINTS)}"
            )
    return rules, seed, hang_s, slow_io_s


class ChaosController:
    """Decides, deterministically per schedule, when each point fires."""

    def __init__(
        self,
        rules: Dict[str, ChaosRule],
        *,
        seed: int = 0,
        hang_s: float = DEFAULT_HANG_S,
        slow_io_s: float = DEFAULT_SLOW_IO_S,
        salt: Optional[int] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        self.rules = dict(rules)
        self.seed = seed
        self.hang_s = hang_s
        self.slow_io_s = slow_io_s
        self.state_dir = state_dir
        # Rate schedules are salted (by default with the pid) so sibling
        # and respawned workers draw decorrelated sequences; pass salt=0
        # for a fully deterministic single-process schedule.
        self._salt = os.getpid() if salt is None else salt
        self._rngs: Dict[str, random.Random] = {}
        self._fired: Dict[str, int] = {}

    def fired(self, point: str) -> int:
        """How many times ``point`` has fired in this process."""
        return self._fired.get(point, 0)

    def _rng(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            rng = random.Random(f"{self.seed}:{self._salt}:{point}")
            self._rngs[point] = rng
        return rng

    def _claim_budget(self, point: str, limit: int) -> bool:
        """Atomically claim one firing from a (possibly shared) budget."""
        if self.state_dir is None:
            if self.fired(point) >= limit:
                return False
            return True
        path = Path(self.state_dir) / f"chaos-{point}.count"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a+") as handle:
                if fcntl is not None:
                    fcntl.flock(handle, fcntl.LOCK_EX)
                handle.seek(0)
                text = handle.read().strip()
                count = int(text) if text else 0
                if count >= limit:
                    return False
                handle.seek(0)
                handle.truncate()
                handle.write(str(count + 1))
                handle.flush()
                return True
        except (OSError, ValueError):
            # An unreadable budget fails closed: no injection is better
            # than unbounded injection.
            return False

    def should_fire(self, point: str) -> bool:
        """Whether ``point`` fires now; counts the injection if so."""
        rule = self.rules.get(point)
        if rule is None or rule.rate <= 0.0:
            return False
        if rule.rate < 1.0 and self._rng(point).random() >= rule.rate:
            return False
        if rule.limit is not None and not self._claim_budget(
            point, rule.limit
        ):
            return False
        self._fired[point] = self.fired(point) + 1
        REGISTRY.counter("chaos.injections", point=point).inc()
        return True


# Controllers are memoized per (spec, state-dir) so per-point RNG and
# budget state survive across call sites within one process; the
# environment is still re-read on every call, so tests flip the spec
# without reimporting (the cache-store pattern).
_instances: Dict[Tuple[str, Optional[str]], ChaosController] = {}


def active_chaos() -> Optional[ChaosController]:
    """The process-wide controller, or ``None`` when chaos is off."""
    spec = os.environ.get(ENV_SPEC, "")
    if spec.strip().lower() in _OFF:
        return None
    state_dir = os.environ.get(ENV_STATE) or None
    key = (spec, state_dir)
    controller = _instances.get(key)
    if controller is None:
        rules, seed, hang_s, slow_io_s = parse_spec(spec)
        if not rules:
            return None
        controller = ChaosController(
            rules,
            seed=seed,
            hang_s=hang_s,
            slow_io_s=slow_io_s,
            state_dir=state_dir,
        )
        _instances[key] = controller
    return controller


def reset_chaos_handles() -> None:
    """Drop memoized controllers (and their schedules); tests use this."""
    _instances.clear()


def chaos_point(point: str) -> bool:
    """Convenience: does ``point`` fire under the ambient spec?"""
    controller = active_chaos()
    return controller is not None and controller.should_fire(point)


def chaos_sleep(point: str) -> None:
    """Stall the caller if a latency point (``slow_io``) fires."""
    controller = active_chaos()
    if controller is not None and controller.should_fire(point):
        time.sleep(controller.slow_io_s)


def chaos_worker_entry() -> None:
    """Fire the worker-side points; call at the top of a computation.

    ``worker_crash`` hard-exits a spawn child (the supervisor observes a
    dead worker, exactly like an OOM kill) but raises
    :class:`ChaosInjected` when the caller *is* the coordinator process
    (inline/thread mode), where ``os._exit`` would take the service
    down with it.  ``worker_hang`` sleeps ``hang_s`` — long enough to
    trip timeouts and the hung-worker reaper, not an actual deadlock, so
    an un-reaped test run still terminates.
    """
    controller = active_chaos()
    if controller is None:
        return
    if controller.should_fire("worker_crash"):
        if multiprocessing.parent_process() is not None:
            os._exit(CRASH_EXIT_CODE)
        raise ChaosInjected("chaos: injected worker crash")
    if controller.should_fire("worker_hang"):
        time.sleep(controller.hang_s)
