#!/usr/bin/env python3
"""Compare all four architectures on one workload — the paper's core story.

Reproduces the Figure 15-18 comparison for a single workload: utilization,
performance, data traffic, power, efficiency, and energy, side by side,
plus FlexFlow's speedup/efficiency ratios.

Usage::

    python examples/compare_architectures.py [workload] [array_dim]
"""

import sys

from repro import ArchConfig, get_workload, make_accelerator
from repro.experiments.common import ARCH_LABELS, ARCH_ORDER
from repro.metrics import (
    efficiency_ratio_matrix,
    speedup_matrix,
    volume_ratio_matrix,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "AlexNet"
    array_dim = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    network = get_workload(workload)
    config = ArchConfig().scaled_to(array_dim)

    results = {
        kind: make_accelerator(
            kind, config, workload_name=workload
        ).simulate_network(network)
        for kind in ARCH_ORDER
    }

    print(f"{workload} on {array_dim}x{array_dim}-PE-scale engines @ 1 GHz")
    print()
    header = (
        f"{'architecture':<12} {'util':>6} {'GOPS':>8} {'traffic KB':>11}"
        f" {'power mW':>9} {'GOPS/W':>7} {'energy uJ':>10}"
    )
    print(header)
    print("-" * len(header))
    for kind in ARCH_ORDER:
        r = results[kind]
        traffic_kb = r.buffer_traffic_words * 2 / 1024
        print(
            f"{ARCH_LABELS[kind]:<12} {r.overall_utilization:6.2f}"
            f" {r.gops:8.1f} {traffic_kb:11.1f} {r.power_mw:9.0f}"
            f" {r.gops_per_watt:7.0f} {r.energy_uj:10.2f}"
        )

    print()
    speedups = speedup_matrix(results)
    ratios = efficiency_ratio_matrix(results)
    volumes = volume_ratio_matrix(results)
    print("FlexFlow vs. each baseline:")
    for kind in ("systolic", "mapping2d", "tiling"):
        print(
            f"  vs {ARCH_LABELS[kind]:<12} {speedups[kind]:5.2f}x faster,"
            f" {ratios[kind]:5.2f}x more efficient,"
            f" {volumes[kind]:6.2f}x less data moved"
        )


if __name__ == "__main__":
    main()
