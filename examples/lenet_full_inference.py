#!/usr/bin/env python3
"""Full LeNet-5 inference through the cycle-level FlexFlow machine.

Every layer — both CONV layers on the grouped PE array with local stores
and RA/RS broadcasts, both POOL layers on the 1-D pooling unit, and all
three FC layers via the FC-as-1x1-CONV reduction — executes functionally
and is checked against the NumPy golden model.  The per-layer cycle
counts equal the Table 4 mapping's predictions exactly.

Usage::

    python examples/lenet_full_inference.py
"""

import numpy as np

from repro import ArchConfig, get_workload
from repro.nn import make_network_inputs, run_network
from repro.sim import FlexFlowNetworkSim


def main() -> None:
    network = get_workload("LeNet-5")
    inputs = make_network_inputs(network)

    print("Golden model: running all layers with NumPy ...")
    golden_out, golden_acts = run_network(network, inputs)

    print("FlexFlow machine: cycle-level functional simulation ...\n")
    sim = FlexFlowNetworkSim(ArchConfig(array_dim=16))
    result = sim.run_network(network, inputs)

    print(f"{'layer':<6} {'cycles':>8} {'shape':<14} match")
    for name, activation in golden_acts.items():
        match = np.allclose(result.activations[name], activation, atol=1e-7)
        if not match:
            raise SystemExit(f"{name}: simulation diverged from golden model")
        cycles = result.layer_cycles.get(name, 0)
        print(f"{name:<6} {cycles:>8} {str(activation.shape):<14} OK")

    print()
    trace = result.conv_trace
    print(f"Convolutional unit totals:")
    print(f"  cycles:             {trace.cycles:,}")
    print(f"  MACs:               {trace.mac_ops:,}")
    print(f"  local-store reads:  {trace.local_store_reads:,}")
    print(f"  buffer words read:  {trace.neuron_buffer_reads + trace.kernel_buffer_reads:,}")
    print(f"Pooling unit: {result.pool_trace.cycles:,} cycles (overlapped)")
    print()
    top = np.argsort(result.final_output)[::-1][:3]
    print(f"Classifier output (10 classes): top-3 indices {list(top)}")
    print("Full inference matches the golden model bit-for-bit.")


if __name__ == "__main__":
    main()
