#!/usr/bin/env python3
"""Drive all four functional simulators and verify them against NumPy.

This is the executable proof behind the repository's dataflow claims:
each architecture's cycle-level machine (FlexFlow's grouped PE array with
local stores and RA/RS broadcasts, the systolic pipeline with inter-row
FIFOs, the 2D shift array, the tiling adder trees) computes the exact
same convolution as the golden model — while reporting very different
cycle counts and traffic.

The script runs the paper's Figure 8 example (C1/C2 on a 4x4 array) plus
a batch of random layers, and prints per-dataflow cycle/traffic contrasts.

Usage::

    python examples/cycle_accurate_verification.py
"""

import numpy as np

from repro import ArchConfig, ConvLayer, UnrollingFactors
from repro.nn import conv2d, make_inputs, make_kernels
from repro.sim import (
    FlexFlowFunctionalSim,
    Mapping2DFunctionalSim,
    SystolicFunctionalSim,
    TilingFunctionalSim,
)


def verify(name, outputs, golden):
    ok = np.allclose(outputs, golden, atol=1e-9)
    status = "OK " if ok else "FAIL"
    if not ok:
        raise SystemExit(f"{name}: functional sim diverged from golden model")
    return status


def run_figure8_example() -> None:
    print("Figure 8 example: C1 (M=2,N=1,S=8,K=4) on a 4x4 FlexFlow array")
    layer = ConvLayer("C1", in_maps=1, out_maps=2, out_size=8, kernel=4)
    factors = UnrollingFactors(tm=2, tn=1, tr=1, tc=2, ti=1, tj=4)
    inputs, kernels = make_inputs(layer), make_kernels(layer)
    golden = conv2d(inputs, kernels)

    sim = FlexFlowFunctionalSim(ArchConfig(array_dim=4), factors=factors)
    outputs, trace = sim.run_layer(layer, inputs, kernels)
    status = verify("flexflow", outputs, golden)
    print(
        f"  [{status}] factors {factors.describe()}:"
        f" {trace.cycles} cycles, {trace.mac_ops} MACs,"
        f" {trace.neuron_buffer_reads} neuron reads"
        f" ({layer.num_input_words} unique neurons)"
    )
    print()


def run_cross_dataflow_comparison() -> None:
    layer = ConvLayer("demo", in_maps=2, out_maps=4, out_size=6, kernel=3)
    inputs, kernels = make_inputs(layer), make_kernels(layer)
    golden = conv2d(inputs, kernels)
    print(f"Cross-dataflow comparison on {layer.describe()}:")

    sims = {
        "flexflow": FlexFlowFunctionalSim(ArchConfig(array_dim=8)),
        "systolic": SystolicFunctionalSim(),
        "2d-mapping": Mapping2DFunctionalSim(block_size=6),
        "tiling": TilingFunctionalSim(tm=4, tn=2),
    }
    for name, sim in sims.items():
        outputs, trace = sim.run_layer(layer, inputs, kernels)
        status = verify(name, outputs, golden)
        reads = trace.neuron_buffer_reads + trace.kernel_buffer_reads
        print(
            f"  [{status}] {name:<11} {trace.cycles:6d} cycles,"
            f" {reads:6d} buffer reads, {trace.fifo_accesses:6d} FIFO events"
        )
    print()


def run_random_batch(count: int = 8, seed: int = 42) -> None:
    rng = np.random.default_rng(seed)
    print(f"Random batch ({count} layers, all four dataflows each):")
    for idx in range(count):
        n = int(rng.integers(1, 4))
        m = int(rng.integers(1, 5))
        s = int(rng.integers(2, 7))
        k = int(rng.integers(1, min(4, s) + 1))
        layer = ConvLayer(f"rand{idx}", in_maps=n, out_maps=m, out_size=s, kernel=k)
        inputs, kernels = make_inputs(layer), make_kernels(layer)
        golden = conv2d(inputs, kernels)
        for name, sim in (
            ("ff", FlexFlowFunctionalSim(ArchConfig(array_dim=4))),
            ("sys", SystolicFunctionalSim()),
            ("2d", Mapping2DFunctionalSim(block_size=4)),
            ("til", TilingFunctionalSim(tm=3, tn=2)),
        ):
            outputs, _ = sim.run_layer(layer, inputs, kernels)
            verify(name, outputs, golden)
        print(f"  [OK ] N={n} M={m} S={s} K={k}: all four dataflows agree")
    print()
    print("All functional simulations match the golden model.")


def main() -> None:
    run_figure8_example()
    run_cross_dataflow_comparison()
    run_random_batch()


if __name__ == "__main__":
    main()
