#!/usr/bin/env python3
"""The Figure 19 scalability study, runnable on any workload.

Sweeps the PE array from 8x8 to 64x64 and prints utilization, power, and
area for all four architectures — the paper's argument that only FlexFlow
keeps its utilization as the engine grows.

Usage::

    python examples/scalability_study.py [workload]
"""

import sys

from repro.experiments.common import ARCH_LABELS, ARCH_ORDER
from repro.metrics import scalability_sweep, utilization_sensitivity
from repro.nn import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "AlexNet"
    network = get_workload(workload)
    scales = (8, 16, 32, 64)
    points = scalability_sweep(network, scales=scales)
    by_key = {(p.kind, p.array_dim): p for p in points}

    print(f"Scalability of the four architectures on {workload}")
    print()
    print("Utilization vs. scale:")
    header = f"{'scale':<8}" + "".join(
        f"{ARCH_LABELS[k]:>12}" for k in ARCH_ORDER
    )
    print(header)
    for dim in scales:
        row = f"{dim}x{dim:<5}"
        for kind in ARCH_ORDER:
            row += f"{by_key[(kind, dim)].utilization:12.2f}"
        print(row)
    print()

    print("Area (mm^2) vs. scale:")
    print(header)
    for dim in scales:
        row = f"{dim}x{dim:<5}"
        for kind in ARCH_ORDER:
            row += f"{by_key[(kind, dim)].area_mm2:12.2f}"
        print(row)
    print()

    print("Power (mW) vs. scale:")
    print(header)
    for dim in scales:
        row = f"{dim}x{dim:<5}"
        for kind in ARCH_ORDER:
            row += f"{by_key[(kind, dim)].power_mw:12.0f}"
        print(row)
    print()

    print("Utilization drop from 8x8 to 64x64 (lower = more scalable):")
    for kind in ARCH_ORDER:
        drop = utilization_sensitivity(points, kind)
        print(f"  {ARCH_LABELS[kind]:<12} {drop:+.2f}")


if __name__ == "__main__":
    main()
