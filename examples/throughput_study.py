#!/usr/bin/env python3
"""Batched-inference throughput with double-buffered DMA.

The ping-pong neuron buffers let the next image's loads overlap the
current image's compute.  This study compiles a workload, executes it at
several external bandwidths and batch sizes, and shows where throughput
saturates — the deployment question behind the paper's 1-image numbers.

Usage::

    python examples/throughput_study.py [workload]
"""

import sys

from repro import ArchConfig, compile_network, get_workload
from repro.compiler import ProgramExecutor


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "LeNet-5"
    network = get_workload(workload)
    config = ArchConfig()
    program = compile_network(network, config.array_dim)
    conv_ops = sum(layer.ops for layer in network.conv_layers)

    print(f"{workload}: batched throughput with double-buffered DMA\n")
    print(
        f"{'bandwidth':>10} {'batch':>6} {'cyc/inf':>10} {'GOPS':>8}"
        f" {'overlap gain':>13}"
    )
    for words_per_cycle in (1, 2, 4, 8, 16):
        executor = ProgramExecutor(config, dma_words_per_cycle=words_per_cycle)
        for batch in (1, 4, 64):
            report = executor.execute_batch(program, batch)
            cycles_per_inf = report.cycles_per_inference
            gops = conv_ops / cycles_per_inf  # ops per ns at 1 GHz = GOPS
            print(
                f"{words_per_cycle:>8} w {batch:>6} {cycles_per_inf:>10.0f}"
                f" {gops:>8.1f} {report.speedup_over_serial:>12.2f}x"
            )
        print()
    print(
        "Once bandwidth covers the steady-state DMA, batching hides the"
        " remaining load latency and throughput approaches the compute"
        " bound."
    )


if __name__ == "__main__":
    main()
