#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment suite (Figure 1, Tables 3/4/6/7, Figures 15-19,
the Section 6.2.1 area table, and the Section 6.2.5 interconnect study)
and prints each in paper-row format.  This is the one-shot reproduction
entry point; the per-experiment pytest benchmarks in ``benchmarks/`` time
the same code.

Usage::

    python examples/reproduce_paper.py [experiment_id ...]

With no arguments, all experiments run in the paper's order.
"""

import sys

from repro.experiments import ALL_EXPERIMENTS, run_experiment


def main() -> None:
    requested = sys.argv[1:] or list(ALL_EXPERIMENTS)
    unknown = [eid for eid in requested if eid not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment ids {unknown}; known: {', '.join(ALL_EXPERIMENTS)}"
        )
    for eid in requested:
        result = run_experiment(eid)
        print(result.format_table())
        print()


if __name__ == "__main__":
    main()
