#!/usr/bin/env python3
"""Define a custom CNN, map it, and compile it to FlexFlow assembly.

Shows the downstream-user workflow: build a :class:`~repro.nn.Network`
from layer specs, let the mapper pick unrolling factors (watching the
inter-layer coupling at work), execute it on the accelerator model, and
emit the configuration program.

Usage::

    python examples/custom_network.py
"""

from repro import (
    ArchConfig,
    ConvLayer,
    FCLayer,
    FlexFlowAccelerator,
    InputSpec,
    Network,
    PoolLayer,
    compile_network,
    map_network,
    to_asm,
)
from repro.nn.stats import dominant_parallelism_by_layer, parallelism_profile


def build_traffic_sign_net() -> Network:
    """A small traffic-sign-classifier CNN in the spirit of the paper's
    intelligent-transportation motivation (Section 1)."""
    return Network(
        "TrafficSign",
        InputSpec(maps=3, size=48),
        [
            ConvLayer("C1", in_maps=3, out_maps=16, out_size=44, kernel=5),
            PoolLayer("S2", maps=16, in_size=44, out_size=22, window=2),
            ConvLayer("C3", in_maps=16, out_maps=32, out_size=20, kernel=3),
            PoolLayer("S4", maps=32, in_size=20, out_size=10, window=2),
            ConvLayer("C5", in_maps=32, out_maps=64, out_size=8, kernel=3),
            PoolLayer("S6", maps=64, in_size=8, out_size=4, window=2),
            FCLayer("F7", in_neurons=64 * 4 * 4, out_neurons=256),
            FCLayer("F8", in_neurons=256, out_neurons=43),  # GTSRB classes
        ],
    )


def main() -> None:
    network = build_traffic_sign_net()
    print(network.describe())
    print()

    # The paper's Section 1 observation: dominance flips between layers.
    print("Dominant parallelism per layer (the Figure 1 problem):")
    for layer in network.conv_layers:
        profile = parallelism_profile(layer)
        print(
            f"  {layer.name}: FP={profile.feature_map:<5} NP={profile.neuron:<5}"
            f" SP={profile.synapse:<3} -> dominant {profile.dominant}"
        )
    print()

    config = ArchConfig()
    mapping = map_network(network, config.array_dim)
    print("Mapper decisions (note the coupled <Tm,Tr,Tc> -> <Tn,Ti,Tj> chain):")
    for lm in mapping.layers:
        print(
            f"  {lm.layer.name}: {lm.factors.describe()}"
            f"  Ut={lm.utilization.ut:.2f}"
            f"  {'(coupled)' if lm.coupled else '(re-layout)'}"
        )
    print(f"  network utilization: {mapping.overall_utilization:.1%}")
    print()

    result = FlexFlowAccelerator(config).simulate_network(network)
    print(
        f"Execution: {result.total_cycles:,} cycles,"
        f" {result.gops:.0f} GOPS, {result.power_mw:.0f} mW,"
        f" {result.energy_uj:.2f} uJ"
    )
    print()

    program = compile_network(network, config.array_dim, mapping=mapping)
    print("Configuration program:")
    for line in to_asm(program).splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
