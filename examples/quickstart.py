#!/usr/bin/env python3
"""Quickstart: map LeNet-5 onto FlexFlow and read the headline numbers.

Runs the Section 5 compiler pass (parallelism determination), executes
the network on the FlexFlow model, and prints per-layer unrolling
factors, utilization, and the Figure 15/16-style summary.

Usage::

    python examples/quickstart.py [workload]

where ``workload`` is one of PV, FR, LeNet-5, HG, AlexNet, VGG-11
(default LeNet-5).
"""

import sys

from repro import (
    ArchConfig,
    FlexFlowAccelerator,
    compile_network,
    get_workload,
    map_network,
    to_asm,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "LeNet-5"
    network = get_workload(workload)
    config = ArchConfig()  # the paper's 16x16 PE / 32 KB buffer setup

    print(network.describe())
    print()

    # 1. Parallelism determination (Section 5): the joint DP mapper.
    mapping = map_network(network, config.array_dim)
    print(f"Unrolling factors on a {config.array_dim}x{config.array_dim} array:")
    for lm in mapping.layers:
        coupled = "coupled" if lm.coupled else "re-layout"
        print(
            f"  {lm.layer.name:<4} {lm.factors.describe():<42}"
            f" Ur={lm.utilization.ur:.2f} Uc={lm.utilization.uc:.2f}"
            f" Ut={lm.utilization.ut:.2f}  {lm.compute_cycles} cycles ({coupled})"
        )
    print(f"  overall utilization: {mapping.overall_utilization:.1%}")
    print()

    # 2. Execute on the accelerator model.
    result = FlexFlowAccelerator(config).simulate_network(network)
    report = result.power_report()
    print(f"Execution on FlexFlow ({config.num_pes} PEs @ 1 GHz):")
    print(f"  cycles:            {result.total_cycles:,}")
    print(f"  performance:       {result.gops:.1f} GOPS"
          f" (nominal {config.nominal_gops:.0f})")
    print(f"  power:             {result.power_mw:.0f} mW")
    print(f"  power efficiency:  {result.gops_per_watt:.0f} GOPS/W")
    print(f"  energy:            {result.energy_uj:.2f} uJ")
    print(f"  buffer traffic:    {result.buffer_traffic_words:,} words")
    print(f"  DRAM accesses/op:  {result.dram_accesses_per_op:.4f}")
    print()

    # 3. The generated configuration program (Section 5's assembly).
    program = compile_network(network, config.array_dim, mapping=mapping)
    print("Generated configuration program:")
    for line in to_asm(program).splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
