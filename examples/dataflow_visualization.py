#!/usr/bin/env python3
"""Visualize the flexible dataflow: occupancy maps and address traces.

Renders the paper's Figure 8 picture in ASCII — how the mapper's
complementary parallelism tiles the PE array into logical groups for each
layer — and shows a Figure 10/11-style local-store address trace with its
INIT/INCR/HOLD/JUMP modes.

Usage::

    python examples/dataflow_visualization.py [workload] [array_dim]
"""

import sys

from repro import get_workload, map_network
from repro.arch import AddressGenerator
from repro.dataflow import occupancy_map


def show_occupancy(workload: str, array_dim: int) -> None:
    network = get_workload(workload)
    mapping = map_network(network, array_dim)
    print(f"{workload} on a {array_dim}x{array_dim} array — logical grouping\n")
    for lm in mapping.layers:
        omap = occupancy_map(lm)
        print(
            f"{lm.layer.name}: {lm.factors.describe()}"
            f"  ({omap.active_pes}/{omap.total_pes} PEs active,"
            f" Ut={lm.utilization.ut:.2f})"
        )
        print(omap.render())
        print()


def show_address_trace() -> None:
    print("Local-store address trace (Figure 10/11 machinery)")
    print("Walking two neuron rows, window length 3, two windows per row,")
    print("one HOLD reuse per window, row jump 10:\n")
    gen = AddressGenerator(
        base=0,
        step=1,
        window_len=3,
        windows_per_row=2,
        row_jump=10,
        hold_repeats=1,
    )
    print(f"{'cycle':>5} {'address':>8} {'mode':>6}")
    for entry in gen.generate(num_rows=2):
        print(f"{entry.cycle:>5} {entry.address:>8} {entry.mode.value:>6}")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "LeNet-5"
    array_dim = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    show_occupancy(workload, array_dim)
    show_address_trace()


if __name__ == "__main__":
    main()
