"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs; in
offline environments without it, ``python setup.py develop`` installs the
package in editable mode using only setuptools.  Configuration lives in
``pyproject.toml``; this file adds nothing beyond the entry point.
"""

from setuptools import setup

setup()
